//! The audit service's JSON wire format.
//!
//! Hand-rolled codecs (over [`crate::json::Value`]) for everything that
//! crosses the service boundary: workloads in, netlists and verdicts
//! out. Encoding is canonical — field order is fixed, `u64`s ride as
//! decimal strings (JSON doubles lose precision past 2^53), permutations
//! and lookup tables as plain number arrays — so two equal values always
//! serialize to the same bytes, and byte equality of encoded reports is
//! exactly field-wise equality. Decoders are strict: missing fields,
//! wrong types and out-of-range values are [`WireError`]s, never
//! defaults.

use std::fmt;

use mvf::merge::PinAssignment;
use mvf::{ObfuscationSpace, PlausibilityVerdict, SchemeKind, Workload, WorkloadReport};
use mvf_attack::AnyIoVerdict;
use mvf_cells::{CamoLibrary, Library};
use mvf_ga::GenStats;
use mvf_logic::{IoInterpretation, VectorFunction};
use mvf_netlist::{CellRef, NetId, Netlist};

use crate::json::Value;

/// A decode failure: what was malformed, with enough path context to
/// debug a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl WireError {
    fn new(msg: impl Into<String>) -> WireError {
        WireError(msg.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, WireError> {
    v.get(key)
        .ok_or_else(|| WireError::new(format!("missing field '{key}'")))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, WireError> {
    field(v, key)?
        .as_usize()
        .ok_or_else(|| WireError::new(format!("field '{key}' is not a non-negative integer")))
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, WireError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| WireError::new(format!("field '{key}' is not a string")))
}

fn arr_field<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], WireError> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| WireError::new(format!("field '{key}' is not an array")))
}

fn usize_list(items: &[Value], what: &str) -> Result<Vec<usize>, WireError> {
    items
        .iter()
        .map(|v| {
            v.as_usize()
                .ok_or_else(|| WireError::new(format!("{what} entry is not an integer")))
        })
        .collect()
}

/// Encodes a finite-or-not `f64` for human-facing payloads: finite
/// values as numbers (Rust's shortest form round-trips bit-exactly),
/// non-finite ones as the strings `"inf"`, `"-inf"`, `"nan"`.
pub(crate) fn float_value(x: f64) -> Value {
    if x.is_finite() {
        Value::Num(x)
    } else if x.is_nan() {
        Value::str("nan")
    } else if x > 0.0 {
        Value::str("inf")
    } else {
        Value::str("-inf")
    }
}

/// Decodes [`float_value`].
pub(crate) fn float_from(v: &Value) -> Result<f64, WireError> {
    match v {
        Value::Num(n) => Ok(*n),
        Value::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            _ => Err(WireError::new(format!("'{s}' is not a float"))),
        },
        _ => Err(WireError::new("expected a float")),
    }
}

// ---------------------------------------------------------------------------
// Functions and workloads

/// `{"n_in":…,"n_out":…,"table":[…]}` — the lookup-table form of a
/// viable function (row `m` holds the packed output bits on minterm `m`).
pub fn encode_function(f: &VectorFunction) -> Value {
    Value::Obj(vec![
        ("n_in".into(), Value::usize(f.n_inputs())),
        ("n_out".into(), Value::usize(f.n_outputs())),
        (
            "table".into(),
            Value::Arr(
                f.to_lookup_table()
                    .into_iter()
                    .map(|row| Value::usize(row as usize))
                    .collect(),
            ),
        ),
    ])
}

/// Decodes [`encode_function`].
///
/// # Errors
///
/// [`WireError`] on missing/mistyped fields or a table whose length does
/// not match `2^n_in`.
pub fn decode_function(v: &Value) -> Result<VectorFunction, WireError> {
    let n_in = usize_field(v, "n_in")?;
    let n_out = usize_field(v, "n_out")?;
    let table: Vec<u16> = arr_field(v, "table")?
        .iter()
        .map(|row| {
            row.as_usize()
                .filter(|&r| r <= usize::from(u16::MAX))
                .map(|r| r as u16)
                .ok_or_else(|| WireError::new("table row is not a 16-bit integer"))
        })
        .collect::<Result<_, _>>()?;
    VectorFunction::from_lookup_table(n_in, n_out, &table)
        .map_err(|e| WireError::new(format!("invalid function: {e}")))
}

/// `{"name":…,"seed":null|"…","functions":[…]}`.
pub fn encode_workload(w: &Workload) -> Value {
    Value::Obj(vec![
        ("name".into(), Value::str(&w.name)),
        ("seed".into(), w.seed.map_or(Value::Null, Value::u64)),
        (
            "functions".into(),
            Value::Arr(w.functions.iter().map(encode_function).collect()),
        ),
    ])
}

/// Decodes [`encode_workload`].
///
/// # Errors
///
/// [`WireError`] on malformed structure or functions.
pub fn decode_workload(v: &Value) -> Result<Workload, WireError> {
    let name = str_field(v, "name")?;
    let seed = match field(v, "seed")? {
        Value::Null => None,
        s => Some(
            s.as_u64()
                .ok_or_else(|| WireError::new("field 'seed' is not a u64"))?,
        ),
    };
    let functions = arr_field(v, "functions")?
        .iter()
        .map(decode_function)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Workload {
        name: name.to_string(),
        functions,
        seed,
    })
}

// ---------------------------------------------------------------------------
// Netlists

/// Encodes a netlist structurally: named inputs, cells in instantiation
/// (topological) order referencing library cells **by name**, nets by
/// their integer ids, named outputs. Decoding against the same libraries
/// reconstructs an equal structure ([`decode_netlist`]).
pub fn encode_netlist(nl: &Netlist, lib: &Library, camo: &CamoLibrary) -> Value {
    let cells = nl
        .cells()
        .map(|(_, inst)| {
            let (kind, cell_name) = match inst.cell {
                CellRef::Std(id) => ("std", lib.cell(id).name()),
                CellRef::Camo(id) => ("camo", camo.cell(id).name()),
            };
            Value::Obj(vec![
                ("name".into(), Value::str(&inst.name)),
                (kind.into(), Value::str(cell_name)),
                (
                    "inputs".into(),
                    Value::Arr(
                        inst.inputs
                            .iter()
                            .map(|n| Value::usize(n.0 as usize))
                            .collect(),
                    ),
                ),
                ("output".into(), Value::usize(inst.output.0 as usize)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("name".into(), Value::str(nl.name())),
        (
            "inputs".into(),
            Value::Arr(
                nl.inputs()
                    .iter()
                    .map(|&n| {
                        Value::Arr(vec![Value::str(nl.net_name(n)), Value::usize(n.0 as usize)])
                    })
                    .collect(),
            ),
        ),
        ("cells".into(), Value::Arr(cells)),
        (
            "outputs".into(),
            Value::Arr(
                nl.outputs()
                    .iter()
                    .map(|(name, n)| Value::Arr(vec![Value::str(name), Value::usize(n.0 as usize)]))
                    .collect(),
            ),
        ),
    ])
}

/// Decodes [`encode_netlist`], resolving cell references by name against
/// `lib` / `camo` and replaying the construction (net ids are remapped,
/// structure and names are preserved exactly).
///
/// # Errors
///
/// [`WireError`] on malformed structure, unknown cell names, or nets
/// used before they are driven.
pub fn decode_netlist(v: &Value, lib: &Library, camo: &CamoLibrary) -> Result<Netlist, WireError> {
    let mut nl = Netlist::new(str_field(v, "name")?);
    let mut nets: std::collections::HashMap<usize, NetId> = std::collections::HashMap::new();
    for entry in arr_field(v, "inputs")? {
        let pair = entry
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| WireError::new("input entry is not a [name, net] pair"))?;
        let name = pair[0]
            .as_str()
            .ok_or_else(|| WireError::new("input name is not a string"))?;
        let old = pair[1]
            .as_usize()
            .ok_or_else(|| WireError::new("input net is not an integer"))?;
        let new = nl.add_input(name);
        if nets.insert(old, new).is_some() {
            return Err(WireError::new(format!("net {old} driven twice")));
        }
    }
    for cell in arr_field(v, "cells")? {
        let name = str_field(cell, "name")?;
        let cell_ref = if let Some(std_name) = cell.get("std") {
            let std_name = std_name
                .as_str()
                .ok_or_else(|| WireError::new("cell 'std' is not a string"))?;
            CellRef::Std(
                lib.cell_by_name(std_name)
                    .ok_or_else(|| WireError::new(format!("unknown standard cell '{std_name}'")))?,
            )
        } else if let Some(camo_name) = cell.get("camo") {
            let camo_name = camo_name
                .as_str()
                .ok_or_else(|| WireError::new("cell 'camo' is not a string"))?;
            CellRef::Camo(
                camo.iter()
                    .find(|(_, c)| c.name() == camo_name)
                    .map(|(id, _)| id)
                    .ok_or_else(|| {
                        WireError::new(format!("unknown camouflaged cell '{camo_name}'"))
                    })?,
            )
        } else {
            return Err(WireError::new(format!(
                "cell '{name}' names neither a 'std' nor a 'camo' library cell"
            )));
        };
        let inputs = usize_list(arr_field(cell, "inputs")?, "cell input")?
            .into_iter()
            .map(|old| {
                nets.get(&old)
                    .copied()
                    .ok_or_else(|| WireError::new(format!("net {old} used before it is driven")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let old_out = usize_field(cell, "output")?;
        let (_, new_out) = nl.add_cell(name, cell_ref, inputs);
        if nets.insert(old_out, new_out).is_some() {
            return Err(WireError::new(format!("net {old_out} driven twice")));
        }
    }
    for entry in arr_field(v, "outputs")? {
        let pair = entry
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| WireError::new("output entry is not a [name, net] pair"))?;
        let name = pair[0]
            .as_str()
            .ok_or_else(|| WireError::new("output name is not a string"))?;
        let old = pair[1]
            .as_usize()
            .ok_or_else(|| WireError::new("output net is not an integer"))?;
        let net = nets
            .get(&old)
            .copied()
            .ok_or_else(|| WireError::new(format!("output net {old} is not driven")))?;
        nl.add_output(name, net);
    }
    Ok(nl)
}

// ---------------------------------------------------------------------------
// Assignments, stats, verdicts

/// `{"input_perms":[[…]],"output_perms":[[…]]}`.
pub fn encode_assignment(a: &PinAssignment) -> Value {
    let perms = |ps: &[Vec<usize>]| {
        Value::Arr(
            ps.iter()
                .map(|p| Value::Arr(p.iter().map(|&i| Value::usize(i)).collect()))
                .collect(),
        )
    };
    Value::Obj(vec![
        ("input_perms".into(), perms(&a.input_perms)),
        ("output_perms".into(), perms(&a.output_perms)),
    ])
}

/// Decodes [`encode_assignment`].
///
/// # Errors
///
/// [`WireError`] on malformed structure.
pub fn decode_assignment(v: &Value) -> Result<PinAssignment, WireError> {
    let perms = |key: &str| -> Result<Vec<Vec<usize>>, WireError> {
        arr_field(v, key)?
            .iter()
            .map(|p| {
                usize_list(
                    p.as_arr()
                        .ok_or_else(|| WireError::new("permutation is not an array"))?,
                    "permutation",
                )
            })
            .collect()
    };
    Ok(PinAssignment {
        input_perms: perms("input_perms")?,
        output_perms: perms("output_perms")?,
    })
}

/// `{"best_so_far":…,"best":…,"avg":…}` (floats via the bit-faithful float encoding).
pub fn encode_gen_stats(s: &GenStats) -> Value {
    Value::Obj(vec![
        ("best_so_far".into(), float_value(s.best_so_far)),
        ("best".into(), float_value(s.best)),
        ("avg".into(), float_value(s.avg)),
    ])
}

/// Decodes [`encode_gen_stats`].
///
/// # Errors
///
/// [`WireError`] on malformed structure.
pub fn decode_gen_stats(v: &Value) -> Result<GenStats, WireError> {
    Ok(GenStats {
        best_so_far: float_from(field(v, "best_so_far")?)?,
        best: float_from(field(v, "best")?)?,
        avg: float_from(field(v, "avg")?)?,
    })
}

/// `null | [[in_perm…], in_neg, [out_perm…], out_neg]` — the witness
/// [`IoInterpretation`]. Negation masks are plain integers (`0` for
/// permutation-only sweeps, so pre-NPN payload shapes are a strict
/// subset).
fn encode_witness(w: &Option<IoInterpretation>) -> Value {
    match w {
        None => Value::Null,
        Some(interp) => Value::Arr(vec![
            Value::Arr(interp.in_perm.iter().map(|&i| Value::usize(i)).collect()),
            Value::usize(interp.in_neg as usize),
            Value::Arr(interp.out_perm.iter().map(|&i| Value::usize(i)).collect()),
            Value::usize(interp.out_neg as usize),
        ]),
    }
}

fn decode_witness(v: &Value) -> Result<Option<IoInterpretation>, WireError> {
    match v {
        Value::Null => Ok(None),
        Value::Arr(parts) if parts.len() == 4 => {
            let perm = |p: &Value| {
                usize_list(
                    p.as_arr()
                        .ok_or_else(|| WireError::new("witness permutation is not an array"))?,
                    "witness",
                )
            };
            let mask = |m: &Value, what: &str| {
                m.as_usize()
                    .filter(|&x| x <= u32::MAX as usize)
                    .map(|x| x as u32)
                    .ok_or_else(|| WireError::new(format!("witness {what} is not a 32-bit mask")))
            };
            Ok(Some(IoInterpretation {
                in_perm: perm(&parts[0])?,
                in_neg: mask(&parts[1], "input negation")?,
                out_perm: perm(&parts[2])?,
                out_neg: mask(&parts[3], "output negation")?,
            }))
        }
        _ => Err(WireError::new(
            "witness is not null or a [in_perm, in_neg, out_perm, out_neg] quad",
        )),
    }
}

/// Encodes an interpretation-freedom verdict.
pub fn encode_any_io_verdict(v: &AnyIoVerdict) -> Value {
    Value::Obj(vec![
        ("plausible".into(), Value::Bool(v.plausible)),
        ("witness".into(), encode_witness(&v.witness)),
        ("orbit".into(), Value::usize(v.orbit)),
        ("unique".into(), Value::usize(v.unique)),
        ("screened".into(), Value::usize(v.screened)),
        ("queries".into(), Value::usize(v.queries)),
        ("class".into(), Value::usize(v.class)),
        ("class_size".into(), Value::usize(v.class_size)),
    ])
}

/// Decodes [`encode_any_io_verdict`].
///
/// # Errors
///
/// [`WireError`] on malformed structure.
pub fn decode_any_io_verdict(v: &Value) -> Result<AnyIoVerdict, WireError> {
    let plausible = field(v, "plausible")?
        .as_bool()
        .ok_or_else(|| WireError::new("field 'plausible' is not a bool"))?;
    Ok(AnyIoVerdict {
        plausible,
        witness: decode_witness(field(v, "witness")?)?,
        orbit: usize_field(v, "orbit")?,
        unique: usize_field(v, "unique")?,
        screened: usize_field(v, "screened")?,
        queries: usize_field(v, "queries")?,
        class: usize_field(v, "class")?,
        class_size: usize_field(v, "class_size")?,
    })
}

/// Encodes a per-function report verdict.
pub fn encode_plausibility(v: &PlausibilityVerdict) -> Value {
    Value::Obj(vec![
        ("identity".into(), Value::Bool(v.identity)),
        ("any_io".into(), v.any_io.map_or(Value::Null, Value::Bool)),
        ("witness".into(), encode_witness(&v.witness)),
        ("screened".into(), Value::usize(v.screened)),
        ("queries".into(), Value::usize(v.queries)),
    ])
}

/// Decodes [`encode_plausibility`].
///
/// # Errors
///
/// [`WireError`] on malformed structure.
pub fn decode_plausibility(v: &Value) -> Result<PlausibilityVerdict, WireError> {
    let identity = field(v, "identity")?
        .as_bool()
        .ok_or_else(|| WireError::new("field 'identity' is not a bool"))?;
    let any_io = match field(v, "any_io")? {
        Value::Null => None,
        b => Some(
            b.as_bool()
                .ok_or_else(|| WireError::new("field 'any_io' is not a bool"))?,
        ),
    };
    Ok(PlausibilityVerdict {
        identity,
        any_io,
        witness: decode_witness(field(v, "witness")?)?,
        screened: usize_field(v, "screened")?,
        queries: usize_field(v, "queries")?,
    })
}

// ---------------------------------------------------------------------------
// Reports

/// The client-side mirror of a successful flow result — everything the
/// wire carries, without the server-only intermediate artifacts.
#[derive(Debug, Clone)]
pub struct ResultWire {
    /// The winning pin assignment.
    pub assignment: PinAssignment,
    /// Phase-II area (GE) after synthesis + standard mapping.
    pub synthesized_area_ge: f64,
    /// Final camouflage-mapped area (GE).
    pub mapped_area_ge: f64,
    /// Fitness evaluations spent.
    pub evaluations: usize,
    /// Evaluations that failed and scored `INFINITY`.
    pub failed_evaluations: usize,
    /// Per-generation search statistics.
    pub ga_history: Vec<GenStats>,
    /// The final camouflaged netlist.
    pub netlist: Netlist,
}

/// The client-side mirror of a [`WorkloadReport`]: the outcome is a
/// plain `Result`-like pair (servers cannot ship an [`mvf::MvfError`]
/// value, so errors cross as their display strings).
#[derive(Debug, Clone)]
pub struct ReportWire {
    /// Workload label.
    pub name: String,
    /// The seed the search used.
    pub seed: u64,
    /// Search strategy name.
    pub strategy: String,
    /// The obfuscation family the report's netlist was emitted under.
    pub scheme: SchemeKind,
    /// The stable one-line summary ([`WorkloadReport`]'s `Display`).
    pub summary: String,
    /// The successful result, if the flow succeeded.
    pub ok: Option<ResultWire>,
    /// The error display string, if it failed.
    pub err: Option<String>,
    /// Red-team verdicts, when a sweep ran.
    pub plausibility: Option<Vec<PlausibilityVerdict>>,
}

/// Encodes a full camouflage workload report — shorthand for
/// [`encode_report_in`] over a camouflage space.
pub fn encode_report(r: &WorkloadReport, lib: &Library, camo: &CamoLibrary) -> Value {
    encode_report_in(&ObfuscationSpace::camouflage(lib, camo), r)
}

/// Encodes a full workload report (the `result` response payload) under
/// an obfuscation space: the `scheme` field names the family, and the
/// netlist's choice-bearing cells are resolved against the space's
/// choice library (camouflaged cells or key gates). Canonical: equal
/// reports — including bit-equal floats — produce equal JSON text.
pub fn encode_report_in(space: &ObfuscationSpace<'_>, r: &WorkloadReport) -> Value {
    let (lib, camo) = (space.library(), space.choices());
    let outcome = match &r.outcome {
        Ok(res) => Value::Obj(vec![(
            "ok".into(),
            Value::Obj(vec![
                ("assignment".into(), encode_assignment(&res.assignment)),
                (
                    "synthesized_area_ge".into(),
                    float_value(res.synthesized_area_ge),
                ),
                ("mapped_area_ge".into(), float_value(res.mapped_area_ge)),
                ("evaluations".into(), Value::usize(res.evaluations)),
                (
                    "failed_evaluations".into(),
                    Value::usize(res.failed_evaluations),
                ),
                (
                    "ga_history".into(),
                    Value::Arr(res.ga_history.iter().map(encode_gen_stats).collect()),
                ),
                (
                    "netlist".into(),
                    encode_netlist(&res.mapped.netlist, lib, camo),
                ),
            ]),
        )]),
        Err(e) => Value::Obj(vec![("err".into(), Value::str(e.to_string()))]),
    };
    Value::Obj(vec![
        ("name".into(), Value::str(&r.name)),
        ("seed".into(), Value::u64(r.seed)),
        ("strategy".into(), Value::str(r.strategy)),
        ("scheme".into(), Value::str(space.kind().tag())),
        ("summary".into(), Value::str(r.to_string())),
        ("outcome".into(), outcome),
        (
            "plausibility".into(),
            r.plausibility.as_ref().map_or(Value::Null, |vs| {
                Value::Arr(vs.iter().map(encode_plausibility).collect())
            }),
        ),
    ])
}

/// Decodes a camouflage report — shorthand for [`decode_report_in`]
/// over a camouflage space.
///
/// # Errors
///
/// [`WireError`] on malformed structure.
pub fn decode_report(
    v: &Value,
    lib: &Library,
    camo: &CamoLibrary,
) -> Result<ReportWire, WireError> {
    decode_report_in(&ObfuscationSpace::camouflage(lib, camo), v)
}

/// Decodes [`encode_report_in`] into the client-side mirror. The
/// report's `scheme` tag must match the space's family — resolving a
/// locking netlist's key gates against the camouflage library (or vice
/// versa) would only fail later with a misleading unknown-cell error.
///
/// # Errors
///
/// [`WireError`] on malformed structure or a scheme mismatch.
pub fn decode_report_in(space: &ObfuscationSpace<'_>, v: &Value) -> Result<ReportWire, WireError> {
    let (lib, camo) = (space.library(), space.choices());
    let tag = str_field(v, "scheme")?;
    let scheme = SchemeKind::from_tag(tag)
        .ok_or_else(|| WireError::new(format!("unknown obfuscation scheme '{tag}'")))?;
    if scheme != space.kind() {
        return Err(WireError::new(format!(
            "report scheme '{tag}' does not match the decoding space '{}'",
            space.kind().tag()
        )));
    }
    let outcome = field(v, "outcome")?;
    let (ok, err) = if let Some(res) = outcome.get("ok") {
        (
            Some(ResultWire {
                assignment: decode_assignment(field(res, "assignment")?)?,
                synthesized_area_ge: float_from(field(res, "synthesized_area_ge")?)?,
                mapped_area_ge: float_from(field(res, "mapped_area_ge")?)?,
                evaluations: usize_field(res, "evaluations")?,
                failed_evaluations: usize_field(res, "failed_evaluations")?,
                ga_history: arr_field(res, "ga_history")?
                    .iter()
                    .map(decode_gen_stats)
                    .collect::<Result<_, _>>()?,
                netlist: decode_netlist(field(res, "netlist")?, lib, camo)?,
            }),
            None,
        )
    } else if let Some(e) = outcome.get("err") {
        (
            None,
            Some(
                e.as_str()
                    .ok_or_else(|| WireError::new("field 'err' is not a string"))?
                    .to_string(),
            ),
        )
    } else {
        return Err(WireError::new("outcome has neither 'ok' nor 'err'"));
    };
    let plausibility = match field(v, "plausibility")? {
        Value::Null => None,
        Value::Arr(items) => Some(
            items
                .iter()
                .map(decode_plausibility)
                .collect::<Result<Vec<_>, _>>()?,
        ),
        _ => {
            return Err(WireError::new(
                "field 'plausibility' is not null or an array",
            ))
        }
    };
    Ok(ReportWire {
        name: str_field(v, "name")?.to_string(),
        seed: field(v, "seed")?
            .as_u64()
            .ok_or_else(|| WireError::new("field 'seed' is not a u64"))?,
        strategy: str_field(v, "strategy")?.to_string(),
        scheme,
        summary: str_field(v, "summary")?.to_string(),
        ok,
        err,
        plausibility,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvf_netlist::fingerprint::fingerprint_netlist;

    #[test]
    fn workload_round_trips_on_the_sbox_corpus() {
        let functions = mvf_sboxes::optimal_sboxes()[..4].to_vec();
        for seed in [None, Some(0u64), Some(u64::MAX)] {
            let w = Workload {
                name: "PRESENT x4".into(),
                functions: functions.clone(),
                seed,
            };
            let text = encode_workload(&w).to_string();
            let back = decode_workload(&Value::parse(&text).unwrap()).unwrap();
            assert_eq!(back.name, w.name);
            assert_eq!(back.seed, w.seed);
            assert_eq!(back.functions.len(), w.functions.len());
            for (a, b) in back.functions.iter().zip(&w.functions) {
                assert_eq!(a.to_lookup_table(), b.to_lookup_table());
            }
        }
    }

    #[test]
    fn netlist_round_trips_with_camouflaged_cells() {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let f = &mvf_sboxes::optimal_sboxes()[0];
        let nl = mvf_attack::random_camouflage(f, &lib, &camo).unwrap();
        let text = encode_netlist(&nl, &lib, &camo).to_string();
        let back = decode_netlist(&Value::parse(&text).unwrap(), &lib, &camo).unwrap();
        assert_eq!(
            fingerprint_netlist(&back),
            fingerprint_netlist(&nl),
            "decoded structure differs"
        );
        assert_eq!(back.name(), nl.name());
        assert_eq!(back.outputs().len(), nl.outputs().len());
    }

    #[test]
    fn netlist_round_trips_with_key_gates() {
        let lib = Library::standard();
        let lock = mvf::lock_library(&lib);
        let nand = lib.cell_by_name("NAND2").unwrap();
        let mut plain = Netlist::new("plain");
        let a = plain.add_input("a");
        let b = plain.add_input("b");
        let (_, ab) = plain.add_cell("g0", CellRef::Std(nand), vec![a, b]);
        let (_, y) = plain.add_cell("g1", CellRef::Std(nand), vec![ab, ab]);
        plain.add_output("y", y);
        let locked = mvf::obfuscate::lock_netlist(
            &plain,
            &lock,
            &mvf::LockOptions {
                n_xor: 2,
                n_mux: 1,
                ..mvf::LockOptions::default()
            },
        )
        .unwrap();
        let text = encode_netlist(&locked.netlist, &lib, &lock).to_string();
        let back = decode_netlist(&Value::parse(&text).unwrap(), &lib, &lock).unwrap();
        assert_eq!(
            fingerprint_netlist(&back),
            fingerprint_netlist(&locked.netlist),
            "decoded key-gate structure differs"
        );
    }

    #[test]
    fn report_scheme_tags_are_strict() {
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let lock = mvf::lock_library(&lib);
        let report = WorkloadReport {
            name: "w".into(),
            seed: 7,
            strategy: "ga",
            outcome: Err(mvf::MvfError::from(mvf::LockError::MissingKeyCell("XKEY"))),
            plausibility: None,
        };
        let camo_space = ObfuscationSpace::camouflage(&lib, &camo);
        let lock_space = ObfuscationSpace::locking(&lib, &lock);
        let as_camo = encode_report_in(&camo_space, &report);
        let as_lock = encode_report_in(&lock_space, &report);
        assert_eq!(
            decode_report_in(&camo_space, &as_camo).unwrap().scheme,
            SchemeKind::Camouflage
        );
        assert_eq!(
            decode_report_in(&lock_space, &as_lock).unwrap().scheme,
            SchemeKind::Locking
        );
        // Cross-decoding is rejected up front, not via an unknown-cell
        // error deep inside the netlist decoder.
        assert!(decode_report_in(&lock_space, &as_camo).is_err());
        assert!(decode_report_in(&camo_space, &as_lock).is_err());
        // The legacy pair is the camouflage space in disguise.
        assert_eq!(
            encode_report(&report, &lib, &camo).to_string(),
            as_camo.to_string()
        );
        assert!(decode_report(&as_lock, &lib, &camo).is_err());
    }

    #[test]
    fn verdicts_round_trip_exactly() {
        let any_io = AnyIoVerdict {
            plausible: true,
            witness: Some(IoInterpretation {
                in_perm: vec![2, 0, 1, 3],
                in_neg: 0b1010,
                out_perm: vec![3, 1, 0, 2],
                out_neg: 0b0001,
            }),
            orbit: 147_456,
            unique: 144,
            screened: 140,
            queries: 3,
            class: 2,
            class_size: 3,
        };
        let text = encode_any_io_verdict(&any_io).to_string();
        assert_eq!(
            decode_any_io_verdict(&Value::parse(&text).unwrap()).unwrap(),
            any_io
        );
        let verdict = PlausibilityVerdict {
            identity: false,
            any_io: Some(true),
            witness: Some(IoInterpretation::from_perms(vec![1, 0], vec![0, 1])),
            screened: 7,
            queries: 2,
        };
        let text = encode_plausibility(&verdict).to_string();
        assert_eq!(
            decode_plausibility(&Value::parse(&text).unwrap()).unwrap(),
            verdict
        );
        let negative = PlausibilityVerdict {
            identity: false,
            any_io: None,
            witness: None,
            screened: 1,
            queries: 0,
        };
        let text = encode_plausibility(&negative).to_string();
        assert_eq!(
            decode_plausibility(&Value::parse(&text).unwrap()).unwrap(),
            negative
        );
    }

    #[test]
    fn malformed_wire_values_are_rejected() {
        for bad in [
            r#"{"n_in":4,"n_out":4}"#,                   // missing table
            r#"{"n_in":4,"n_out":4,"table":[1,2]}"#,     // short table
            r#"{"n_in":4,"n_out":4,"table":[99999]}"#,   // row overflow
            r#"{"name":"w","functions":[]}"#,            // missing seed
            r#"{"name":"w","seed":1.5,"functions":[]}"#, // fractional seed
        ] {
            let v = Value::parse(bad).unwrap();
            assert!(
                decode_function(&v).is_err() && decode_workload(&v).is_err(),
                "accepted malformed wire value: {bad}"
            );
        }
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let orphan = Value::parse(
            r#"{"name":"x","inputs":[["a",0]],"cells":[{"name":"u","std":"NAND2","inputs":[0,7],"output":2}],"outputs":[["y",2]]}"#,
        )
        .unwrap();
        assert!(
            decode_netlist(&orphan, &lib, &camo).is_err(),
            "undriven net must be rejected"
        );
    }
}
