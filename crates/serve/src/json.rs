//! A minimal, dependency-free JSON value tree with a strict parser.
//!
//! The wire format and checkpoint files need exactly one thing from
//! JSON: a deterministic, round-trippable encoding of trees of numbers,
//! strings, arrays and ordered objects. [`Value`] is that tree;
//! [`Value::parse`] is a strict RFC 8259 parser (full escape handling
//! including surrogate pairs, no trailing garbage, no extensions), and
//! the [`Display`](fmt::Display) impl is the canonical serializer —
//! object key order is preserved, floats print in Rust's
//! shortest-round-trip form, so `parse(v.to_string()) == v` for every
//! finite tree.
//!
//! Lossless `u64` values (seeds, fingerprints, RNG words) do not fit
//! JSON's double-precision numbers; the convention throughout the wire
//! layer is to carry them as decimal strings and read them back with
//! [`Value::as_u64`], which accepts both forms.

use std::fmt;

/// Maximum nesting depth the parser accepts (arrays + objects).
const MAX_DEPTH: usize = 128;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (finite; JSON has no NaN or infinities).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

/// A parse failure: byte position and what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A non-negative integer that fits `usize` exactly.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n.fract() != 0.0 || !(0.0..=9_007_199_254_740_992.0).contains(&n) {
            return None;
        }
        Some(n as usize)
    }

    /// A lossless `u64`: either an exactly-representable number or a
    /// decimal string (the wire convention for full-width words).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(_) => self.as_usize().map(|n| n as u64),
            Value::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// A number value (must be finite).
    pub fn num(n: f64) -> Value {
        assert!(n.is_finite(), "JSON numbers must be finite");
        Value::Num(n)
    }

    /// A `u64` carried losslessly (decimal string — see [`Value::as_u64`]).
    pub fn u64(n: u64) -> Value {
        Value::Str(n.to_string())
    }

    /// A `usize` as a plain number (counts and indices stay well below
    /// 2^53 in practice; asserted here).
    pub fn usize(n: usize) -> Value {
        assert!(n <= 9_007_199_254_740_992, "count exceeds exact f64 range");
        Value::Num(n as f64)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                debug_assert!(n.is_finite(), "JSON numbers must be finite");
                if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{8}' => f.write_str("\\b")?,
            '\u{c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes is valid UTF-8 because the
            // input is a &str and we only stop at ASCII delimiters.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("input is valid UTF-8 and the run breaks at ASCII"),
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..=0xDBFF).contains(&hi) {
                    // High surrogate: a \uDC00-\uDFFF escape must follow.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("lone high surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("lone high surrogate"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..=0xDFFF).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else if (0xDC00..=0xDFFF).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err("invalid escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one digit, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("leading zero in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected an exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number spans ASCII bytes only");
        let n: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Value::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_representative_tree() {
        let v = Value::Obj(vec![
            ("name".into(), Value::str("PRESENT \"x4\"\n\t\\")),
            ("seed".into(), Value::u64(u64::MAX)),
            ("pi".into(), Value::Num(0.1 + 0.2)),
            ("neg".into(), Value::Num(-17.0)),
            ("flag".into(), Value::Bool(true)),
            ("gap".into(), Value::Null),
            (
                "rows".into(),
                Value::Arr(vec![Value::Num(0.0), Value::Num(65535.0)]),
            ),
            ("unicode".into(), Value::str("π≈🦀")),
        ]);
        let text = v.to_string();
        assert_eq!(Value::parse(&text).unwrap(), v, "{text}");
        assert_eq!(
            v.get("seed").unwrap().as_u64(),
            Some(u64::MAX),
            "u64 strings survive losslessly"
        );
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for bits in [
            0x3FB9_9999_9999_999Au64, // 0.1
            0x3FF0_0000_0000_0001,    // 1 + ulp
            0x0000_0000_0000_0001,    // smallest subnormal
            0x7FEF_FFFF_FFFF_FFFF,    // f64::MAX
        ] {
            let x = f64::from_bits(bits);
            let text = Value::Num(x).to_string();
            let back = Value::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), bits, "{text}");
        }
    }

    #[test]
    fn parses_escapes_and_surrogate_pairs() {
        let v = Value::parse(r#""a\u0041\n\t\"\\\/\ud83e\udd80 b""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\t\"\\/🦀 b"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "truefalse",
            "\"unterminated",
            "\"\\q\"",
            "\"\\ud800\"",
            "\"\\udc00 alone\"",
            "01",
            "1.",
            "1e",
            "--1",
            "[1] trailing",
            "{\"a\":1,}",
            "\u{1}",
            "1e999",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
        // Depth bomb: deeper than MAX_DEPTH must error, not overflow.
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn strictness_does_not_reject_valid_corner_cases() {
        assert_eq!(
            Value::parse(" { } ").unwrap(),
            Value::Obj(Vec::new()),
            "empty object"
        );
        assert_eq!(Value::parse("[ ]").unwrap(), Value::Arr(Vec::new()));
        assert_eq!(Value::parse("-0.5e-3").unwrap().as_f64(), Some(-0.0005));
        assert_eq!(Value::parse("0").unwrap().as_usize(), Some(0));
    }
}
