//! The line protocol end to end: submit → checkpoint → cancel → resume
//! → result, all through [`AuditService::handle`], plus the stdio loop
//! over in-memory streams.

use mvf_serve::json::Value;
use mvf_serve::wire::encode_workload;
use mvf_serve::{AuditService, ServeConfig};

fn tiny_cfg() -> ServeConfig {
    let mut cfg = ServeConfig::default();
    cfg.flow.ga.population = 4;
    cfg.flow.ga.generations = 2;
    cfg.checkpoint_steps = 1;
    cfg.sweep_chunk = 5;
    cfg.attack_screen = false;
    cfg
}

fn workload_json(seed: u64) -> String {
    let w = mvf::Workload::new("PRESENT x2", mvf_sboxes::optimal_sboxes()[..2].to_vec())
        .with_seed(seed);
    encode_workload(&w).to_string()
}

fn parse_ok(response: &str) -> Value {
    let v = Value::parse(response).expect("response is valid JSON");
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(true),
        "request failed: {response}"
    );
    v
}

#[test]
fn submit_wait_returns_a_wellformed_report() {
    let service = AuditService::start(tiny_cfg());
    let response = service.handle(&format!(
        "{{\"cmd\":\"submit\",\"id\":\"a\",\"wait\":true,\"workload\":{}}}",
        workload_json(7)
    ));
    let v = parse_ok(&response);
    assert_eq!(v.get("status").and_then(Value::as_str), Some("done"));
    let report = v.get("report").expect("report attached");
    assert_eq!(
        report.get("name").and_then(Value::as_str),
        Some("PRESENT x2")
    );
    assert_eq!(report.get("seed").and_then(Value::as_u64), Some(7));
    let summary = report
        .get("summary")
        .and_then(Value::as_str)
        .expect("summary line");
    assert!(summary.contains("ok, area"), "summary: {summary}");
    let verdicts = report
        .get("plausibility")
        .and_then(Value::as_arr)
        .expect("plausibility verdicts attached");
    assert_eq!(verdicts.len(), 2);
    for verdict in verdicts {
        assert_eq!(verdict.get("identity").and_then(Value::as_bool), Some(true));
        assert_eq!(verdict.get("any_io").and_then(Value::as_bool), Some(true));
    }
    // The result is queryable again after the fact.
    let again = parse_ok(&service.handle("{\"cmd\":\"result\",\"id\":\"a\"}"));
    assert_eq!(
        again.get("report").map(Value::to_string),
        v.get("report").map(Value::to_string),
        "result must return the identical report"
    );
    // A done job's status surfaces the sweep solver's inprocessing
    // counters; the encode-time simplification eliminates variables on
    // every real netlist, so the counter is live, not just present.
    let status = parse_ok(&service.handle("{\"cmd\":\"status\",\"id\":\"a\"}"));
    assert_eq!(status.get("status").and_then(Value::as_str), Some("done"));
    for counter in ["n_vivified", "n_eliminated", "n_reductions"] {
        assert!(
            status.get(counter).and_then(Value::as_u64).is_some(),
            "done status must carry {counter}: {status}"
        );
    }
    assert!(
        status.get("n_eliminated").and_then(Value::as_u64).unwrap() > 0,
        "the sweep encoding must have eliminated variables"
    );
    service.shutdown_and_join();
}

#[test]
fn cancel_checkpoint_resume_reproduces_the_uninterrupted_report() {
    let service = AuditService::start(tiny_cfg());
    // Uninterrupted reference run (pinned workload seed, so the derived
    // submission index does not matter).
    let full = parse_ok(&service.handle(&format!(
        "{{\"cmd\":\"submit\",\"id\":\"full\",\"wait\":true,\"workload\":{}}}",
        workload_json(0xBEE5)
    )));
    let want = full.get("report").expect("report").to_string();

    // Same workload again; cancel it as soon as a checkpoint exists.
    parse_ok(&service.handle(&format!(
        "{{\"cmd\":\"submit\",\"id\":\"killed\",\"workload\":{}}}",
        workload_json(0xBEE5)
    )));
    let checkpoint = loop {
        let response = service.handle("{\"cmd\":\"checkpoint\",\"id\":\"killed\"}");
        let v = Value::parse(&response).unwrap();
        if v.get("ok").and_then(Value::as_bool) == Some(true) {
            break v.get("checkpoint").unwrap().to_string();
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    parse_ok(&service.handle("{\"cmd\":\"cancel\",\"id\":\"killed\"}"));
    // Wait for the job to leave the running state (it may have finished
    // before the cancel landed — resuming from the captured checkpoint
    // is valid either way).
    loop {
        let v = parse_ok(&service.handle("{\"cmd\":\"status\",\"id\":\"killed\"}"));
        let status = v.get("status").and_then(Value::as_str).unwrap().to_string();
        if status == "cancelled" || status == "done" {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // Resume from the captured checkpoint under a new job id.
    let resumed = parse_ok(&service.handle(&format!(
        "{{\"cmd\":\"submit\",\"id\":\"resumed\",\"wait\":true,\"checkpoint\":{checkpoint}}}"
    )));
    assert_eq!(
        resumed.get("report").expect("report").to_string(),
        want,
        "the resumed job's report must be bit-identical to the uninterrupted run"
    );
    service.shutdown_and_join();
}

#[test]
fn protocol_errors_are_reported_not_panicked() {
    let service = AuditService::start(tiny_cfg());
    for (request, needle) in [
        ("not json", "bad request"),
        ("{\"cmd\":\"frobnicate\"}", "unknown cmd"),
        ("{\"nope\":1}", "missing cmd"),
        ("{\"cmd\":\"status\"}", "missing id"),
        ("{\"cmd\":\"status\",\"id\":\"ghost\"}", "no job"),
        ("{\"cmd\":\"result\",\"id\":\"ghost\"}", "no job"),
        (
            "{\"cmd\":\"submit\",\"id\":\"x\"}",
            "workload or a checkpoint",
        ),
        (
            "{\"cmd\":\"submit\",\"id\":\"x\",\"workload\":{\"name\":1}}",
            "bad workload",
        ),
        (
            "{\"cmd\":\"submit\",\"id\":\"x\",\"checkpoint\":{\"format\":\"other\"}}",
            "bad checkpoint",
        ),
    ] {
        let v = Value::parse(&service.handle(request)).expect("error response is JSON");
        assert_eq!(
            v.get("ok").and_then(Value::as_bool),
            Some(false),
            "{request} must fail"
        );
        let error = v.get("error").and_then(Value::as_str).unwrap();
        assert!(error.contains(needle), "{request} → {error}");
    }
    service.shutdown_and_join();
}

#[test]
fn duplicate_ids_are_rejected() {
    let service = AuditService::start(tiny_cfg());
    parse_ok(&service.handle(&format!(
        "{{\"cmd\":\"submit\",\"id\":\"dup\",\"wait\":true,\"workload\":{}}}",
        workload_json(1)
    )));
    let v = Value::parse(&service.handle(&format!(
        "{{\"cmd\":\"submit\",\"id\":\"dup\",\"workload\":{}}}",
        workload_json(1)
    )))
    .unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    service.shutdown_and_join();
}

#[test]
fn the_stdio_loop_answers_line_by_line_and_honors_shutdown() {
    let service = AuditService::start(tiny_cfg());
    let input = format!(
        "{{\"cmd\":\"submit\",\"id\":\"s\",\"wait\":true,\"workload\":{}}}\n{{\"cmd\":\"shutdown\"}}\n{{\"cmd\":\"status\",\"id\":\"s\"}}\n",
        workload_json(3)
    );
    let mut output: Vec<u8> = Vec::new();
    service
        .serve_lines(std::io::Cursor::new(input.into_bytes()), &mut output)
        .expect("in-memory streams cannot fail");
    let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
    // The third request is never served: shutdown stops the loop.
    assert_eq!(lines.len(), 2, "lines: {lines:?}");
    let first = parse_ok(lines[0]);
    assert!(first.get("report").is_some());
    parse_ok(lines[1]);
    assert!(service.is_shutdown());
    service.shutdown_and_join();
}

#[test]
fn checkpoint_files_are_written_when_a_dir_is_configured() {
    let dir = std::env::temp_dir().join("mvf-serve-proto-ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let mut cfg = tiny_cfg();
    cfg.checkpoint_dir = Some(dir.clone());
    let service = AuditService::start(cfg);
    parse_ok(&service.handle(&format!(
        "{{\"cmd\":\"submit\",\"id\":\"disk\",\"wait\":true,\"workload\":{}}}",
        workload_json(9)
    )));
    let path = dir.join("disk.checkpoint.json");
    let cp = mvf_serve::Checkpoint::read(&path).expect("checkpoint file parses");
    assert_eq!(cp.seed, 9);
    std::fs::remove_file(&path).ok();
    service.shutdown_and_join();
}
