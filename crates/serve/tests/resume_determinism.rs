//! Kill/resume determinism of the audit service's jobs.
//!
//! The service's core promise: a job killed at ANY checkpoint boundary
//! and resumed from the serialized checkpoint finishes with a
//! [`mvf::WorkloadReport`] **bit-identical** to the uninterrupted run's
//! — and both equal what `Flow::run_many` reports for the same workload
//! and seed. Reports are compared through their canonical wire encoding
//! (fixed field order, bit-exact floats), so string equality is
//! field-wise equality.

use mvf::{Flow, Workload};
use mvf_logic::{IoInterpretation, VectorFunction};
use mvf_serve::checkpoint::CheckpointPhase;
use mvf_serve::wire::encode_report;
use mvf_serve::{
    audit, resume_audit, run_audit, AuditOutcome, Checkpoint, Control, ServeConfig, SessionStore,
};

fn tiny_cfg() -> ServeConfig {
    let mut cfg = ServeConfig::default();
    cfg.flow.ga.population = 4;
    cfg.flow.ga.generations = 3;
    cfg.checkpoint_steps = 1;
    cfg.sweep_chunk = 5;
    // Screen off: every orbit representative reaches the SAT phase, so
    // the sweep has work items and mid-sweep boundaries to kill at.
    cfg.attack_screen = false;
    cfg
}

fn workload() -> Workload {
    Workload::new("PRESENT x2", mvf_sboxes::optimal_sboxes()[..2].to_vec())
}

const SEED: u64 = 0xA17D;

fn encode(report: &mvf::WorkloadReport) -> String {
    let lib = mvf::cells::Library::standard();
    let camo = mvf::cells::CamoLibrary::from_library(&lib);
    encode_report(report, &lib, &camo).to_string()
}

#[test]
fn uninterrupted_audit_matches_run_many() {
    let cfg = tiny_cfg();
    let w = workload().with_seed(SEED);
    let report = audit(&cfg, &w, SEED, None);
    let flow = Flow::builder()
        .config(cfg.flow.clone())
        .workload_threads(1)
        .attack_sweep(true)
        .attack_interpretation_freedom(true)
        .attack_screen(cfg.attack_screen)
        .attack_npn(cfg.attack_npn)
        .attack_class_share(cfg.attack_class_share)
        .attack_shards(1)
        .build();
    let batch = flow.run_many(std::slice::from_ref(&w));
    assert_eq!(
        encode(&report),
        encode(&batch[0]),
        "the stepped audit job must reproduce the batch report exactly"
    );
}

#[test]
fn killed_and_resumed_at_every_boundary_is_bit_identical() {
    let cfg = tiny_cfg();
    let w = workload();
    // Reference run: never pause, but record every boundary checkpoint
    // through its JSON serialization (so resume also exercises the
    // file-format round trip).
    let mut boundaries: Vec<String> = Vec::new();
    let reference = match run_audit(&cfg, &w, SEED, None, &mut |cp| {
        boundaries.push(cp.to_json());
        Control::Continue
    }) {
        AuditOutcome::Finished { report: r, .. } => *r,
        AuditOutcome::Paused(_) => unreachable!(),
    };
    let want = encode(&reference);
    let ga_boundaries = boundaries
        .iter()
        .filter(|b| b.contains("\"phase\":\"ga\""))
        .count();
    let sweep_boundaries = boundaries.len() - ga_boundaries;
    assert!(
        ga_boundaries >= 1,
        "expected at least one mid-GA boundary, got {ga_boundaries}"
    );
    assert!(
        sweep_boundaries >= 2,
        "expected mid-sweep boundaries, got {sweep_boundaries}"
    );
    for (i, serialized) in boundaries.iter().enumerate() {
        let cp = Checkpoint::from_json(serialized).expect("boundary checkpoint parses");
        let resumed = match resume_audit(&cfg, cp, None, &mut |_| Control::Continue) {
            AuditOutcome::Finished { report: r, .. } => *r,
            AuditOutcome::Paused(_) => unreachable!(),
        };
        assert_eq!(
            encode(&resumed),
            want,
            "resume from boundary {i}/{} diverged",
            boundaries.len()
        );
    }
}

#[test]
fn pause_mid_ga_then_resume_matches() {
    let cfg = tiny_cfg();
    let w = workload();
    let want = encode(&audit(&cfg, &w, SEED, None));
    // Kill at the FIRST boundary (mid-GA: generation 1 of 3).
    let paused = run_audit(&cfg, &w, SEED, None, &mut |_| Control::Pause);
    let AuditOutcome::Paused(cp) = paused else {
        panic!("the job must pause at the first boundary");
    };
    assert!(
        matches!(cp.phase, CheckpointPhase::Ga(_)),
        "the first boundary is mid-GA"
    );
    let resumed = match resume_audit(&cfg, *cp, None, &mut |_| Control::Continue) {
        AuditOutcome::Finished { report: r, .. } => *r,
        AuditOutcome::Paused(_) => unreachable!(),
    };
    assert_eq!(encode(&resumed), want);
}

#[test]
fn pause_mid_sweep_then_resume_matches() {
    let cfg = tiny_cfg();
    let w = workload();
    let want = encode(&audit(&cfg, &w, SEED, None));
    // Kill at the first SWEEP boundary (GA complete, cursor mid-list).
    let mut outcome = run_audit(&cfg, &w, SEED, None, &mut |cp| match cp.phase {
        CheckpointPhase::Ga(_) => Control::Continue,
        CheckpointPhase::Sweep { .. } => Control::Pause,
    });
    let AuditOutcome::Paused(cp) = outcome else {
        panic!("the job must pause at the first sweep boundary");
    };
    let CheckpointPhase::Sweep { ref progress, .. } = cp.phase else {
        panic!("paused checkpoint is not mid-sweep");
    };
    assert!(progress.pos > 0, "the cursor advanced before the boundary");
    // Resume, and kill again at the next sweep boundary — a double kill
    // must still converge to the identical report.
    outcome = resume_audit(&cfg, *cp, None, &mut |_| Control::Pause);
    let second = match outcome {
        AuditOutcome::Paused(cp) => *cp,
        AuditOutcome::Finished { report: r, .. } => {
            // The remaining work fit one chunk; the single kill already
            // proves the mid-sweep case.
            assert_eq!(encode(&r), want);
            return;
        }
    };
    let resumed = match resume_audit(&cfg, second, None, &mut |_| Control::Continue) {
        AuditOutcome::Finished { report: r, .. } => *r,
        AuditOutcome::Paused(_) => unreachable!(),
    };
    assert_eq!(encode(&resumed), want);
}

#[test]
fn warm_session_store_never_changes_reports() {
    let cfg = tiny_cfg();
    let w = workload();
    let cold = encode(&audit(&cfg, &w, SEED, None));
    let mut store = SessionStore::new(usize::MAX);
    let first = encode(&audit(&cfg, &w, SEED, Some(&mut store)));
    // Second submission of the same circuit hits the warm session (the
    // solver has learnt clauses now); the report — query counts
    // included — must not move.
    let second = encode(&audit(&cfg, &w, SEED, Some(&mut store)));
    assert_eq!(first, cold, "a store-backed run must equal a cold run");
    assert_eq!(second, cold, "a warm run must equal a cold run");
    assert!(store.hits() >= 1, "the second run must hit the session");
}

#[test]
fn failing_workloads_report_errors_not_panics() {
    let cfg = tiny_cfg();
    let w = Workload::new("empty", Vec::new());
    let report = audit(&cfg, &w, SEED, None);
    assert!(report.outcome.is_err());
    assert!(report.plausibility.is_none());
    let flow = Flow::builder()
        .config(cfg.flow.clone())
        .workload_threads(1)
        .attack_sweep(true)
        .attack_interpretation_freedom(true)
        .attack_screen(cfg.attack_screen)
        .attack_npn(cfg.attack_npn)
        .attack_class_share(cfg.attack_class_share)
        .attack_shards(1)
        .build();
    let batch = flow.run_many(&[w.with_seed(SEED)]);
    assert_eq!(encode(&report), encode(&batch[0]));
}

/// The NPN configuration: full orbit, cross-candidate class sharing,
/// and a chunk size that parks checkpoint boundaries deep inside the
/// orbit — far past its 3! · 3! = 36 pure-permutation points, so a kill
/// there lands among negation-mask representatives and the resumed
/// cursor must re-enter the Gray-code walk mid-block.
fn npn_cfg() -> ServeConfig {
    let mut cfg = tiny_cfg();
    cfg.attack_npn = true;
    cfg.attack_class_share = true;
    cfg.sweep_chunk = 700;
    cfg
}

/// Two 3-bit functions from one NPN class: the merged design keeps the
/// audit demo-sized (2304-point orbit per candidate) while class
/// sharing has real cross-candidate work to cache — so checkpoints
/// carry a non-empty resolved-verdict vector.
fn npn_workload() -> Workload {
    let f = VectorFunction::from_lookup_table(3, 3, &[1, 0, 3, 2, 5, 7, 6, 4]).unwrap();
    let t = IoInterpretation {
        in_perm: vec![1, 2, 0],
        in_neg: 0b101,
        out_perm: vec![2, 0, 1],
        out_neg: 0b011,
    };
    Workload::new("npn pair", vec![f.clone(), t.apply(&f).unwrap()])
}

#[test]
fn npn_audit_matches_run_many() {
    let cfg = npn_cfg();
    let w = npn_workload().with_seed(SEED);
    let report = audit(&cfg, &w, SEED, None);
    let flow = Flow::builder()
        .config(cfg.flow.clone())
        .workload_threads(1)
        .attack_sweep(true)
        .attack_interpretation_freedom(true)
        .attack_screen(cfg.attack_screen)
        .attack_npn(cfg.attack_npn)
        .attack_class_share(cfg.attack_class_share)
        .attack_shards(1)
        .build();
    let batch = flow.run_many(std::slice::from_ref(&w));
    assert_eq!(
        encode(&report),
        encode(&batch[0]),
        "the stepped NPN audit must reproduce the batch report exactly"
    );
}

#[test]
fn killed_inside_a_negation_mask_block_resumes_bit_identically() {
    let cfg = npn_cfg();
    let w = npn_workload();
    // Reference run, recording every boundary through its JSON
    // serialization (resume exercises the version-2 checkpoint format,
    // resolved-verdict cache included).
    let mut boundaries: Vec<String> = Vec::new();
    let reference = match run_audit(&cfg, &w, SEED, None, &mut |cp| {
        boundaries.push(cp.to_json());
        Control::Continue
    }) {
        AuditOutcome::Finished { report: r, .. } => *r,
        AuditOutcome::Paused(_) => unreachable!(),
    };
    let want = encode(&reference);
    // At least one boundary must sit mid-sweep, past every
    // pure-permutation point, with shared verdicts already cached.
    let mut mid_npn = 0usize;
    for serialized in &boundaries {
        let cp = Checkpoint::from_json(serialized).expect("boundary checkpoint parses");
        if let CheckpointPhase::Sweep { ref progress, .. } = cp.phase {
            assert!(progress.pos > 0, "the cursor advanced before the boundary");
            if progress.pos > 36 {
                mid_npn += 1;
                assert!(
                    !progress.resolved.is_empty(),
                    "class sharing was on and the cursor already solved \
                     representatives, so the checkpoint must carry their verdicts"
                );
            }
        }
        let resumed = match resume_audit(&cfg, cp, None, &mut |_| Control::Continue) {
            AuditOutcome::Finished { report: r, .. } => *r,
            AuditOutcome::Paused(_) => unreachable!(),
        };
        assert_eq!(encode(&resumed), want, "resume diverged from {serialized}");
    }
    assert!(
        mid_npn >= 1,
        "expected a checkpoint inside the negation-mask span of the orbit \
         (got {} boundaries)",
        boundaries.len()
    );
}
