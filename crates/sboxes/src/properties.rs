//! Cryptographic property computations for S-boxes.
//!
//! These are the measures Leander–Poschmann optimality is defined by, used
//! here to validate the transcribed tables and exposed for downstream use.

use mvf_logic::VectorFunction;

/// The Walsh coefficient `W(a, b) = Σ_x (-1)^{b·S(x) ⊕ a·x}`.
///
/// # Panics
///
/// Panics if `a` or `b` do not fit the function's arity.
pub fn walsh_coefficient(s: &VectorFunction, a: u32, b: u32) -> i32 {
    assert!(a < (1 << s.n_inputs()), "input mask out of range");
    assert!(b < (1 << s.n_outputs()), "output mask out of range");
    let mut sum = 0i32;
    for x in 0..(1usize << s.n_inputs()) {
        let ax = (a & x as u32).count_ones();
        let bs = (b & s.eval(x) as u32).count_ones();
        if (ax + bs).is_multiple_of(2) {
            sum += 1;
        } else {
            sum -= 1;
        }
    }
    sum
}

/// The linearity `Lin(S) = max_{a, b≠0} |W(a, b)|`.
///
/// Optimal 4-bit S-boxes achieve 8; a linear function would score `2^n`.
pub fn linearity(s: &VectorFunction) -> i32 {
    let mut best = 0;
    for b in 1..(1u32 << s.n_outputs()) {
        for a in 0..(1u32 << s.n_inputs()) {
            best = best.max(walsh_coefficient(s, a, b).abs());
        }
    }
    best
}

/// The differential uniformity
/// `Diff(S) = max_{a≠0, b} #{x : S(x ⊕ a) ⊕ S(x) = b}`.
///
/// Optimal 4-bit S-boxes achieve 4.
pub fn differential_uniformity(s: &VectorFunction) -> usize {
    let n = 1usize << s.n_inputs();
    let mut best = 0;
    for a in 1..n {
        let mut counts = vec![0usize; 1 << s.n_outputs()];
        for x in 0..n {
            let d = (s.eval(x ^ a) ^ s.eval(x)) as usize;
            counts[d] += 1;
        }
        best = best.max(*counts.iter().max().expect("non-empty"));
    }
    best
}

/// `true` iff every output bit is balanced (equal number of 0s and 1s).
pub fn is_balanced(s: &VectorFunction) -> bool {
    let half = 1usize << (s.n_inputs() - 1);
    (0..s.n_outputs()).all(|i| s.output(i).count_ones() == half)
}

/// Algebraic degree of the S-box: the maximum ANF degree over all output
/// bits, computed with the Möbius transform.
pub fn algebraic_degree(s: &VectorFunction) -> usize {
    let n = s.n_inputs();
    let size = 1usize << n;
    let mut best = 0;
    for bit in 0..s.n_outputs() {
        // Möbius transform of the output column.
        let mut anf: Vec<u8> = (0..size).map(|m| s.output(bit).get(m) as u8).collect();
        let mut step = 1;
        while step < size {
            for block in (0..size).step_by(step * 2) {
                for i in block..block + step {
                    anf[i + step] ^= anf[i];
                }
            }
            step *= 2;
        }
        for (m, &coeff) in anf.iter().enumerate() {
            if coeff == 1 {
                best = best.max(m.count_ones() as usize);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity4() -> VectorFunction {
        let t: Vec<u16> = (0..16).collect();
        VectorFunction::from_lookup_table(4, 4, &t).unwrap()
    }

    #[test]
    fn identity_is_linear() {
        let id = identity4();
        assert_eq!(linearity(&id), 16);
        assert_eq!(differential_uniformity(&id), 16);
        assert_eq!(algebraic_degree(&id), 1);
        assert!(is_balanced(&id));
    }

    #[test]
    fn walsh_of_constant_output_mask_zero() {
        let id = identity4();
        // b = 0 ⇒ W(0,0) = 2^n.
        assert_eq!(walsh_coefficient(&id, 0, 0), 16);
    }

    #[test]
    fn present_degree_is_three() {
        assert_eq!(algebraic_degree(&crate::present_sbox()), 3);
    }

    #[test]
    fn present_balanced() {
        assert!(is_balanced(&crate::present_sbox()));
    }

    #[test]
    fn des_sboxes_differential_bound() {
        // DES S-boxes have Diff ≤ 16 and well above the 4→4 optimum; the
        // classic published value for S1 is 16.
        for s in crate::des_sboxes() {
            let d = differential_uniformity(&s);
            assert!(d <= 16, "diff {d}");
        }
    }
}
