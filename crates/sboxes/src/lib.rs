//! The S-box workloads of the paper's evaluation (§IV).
//!
//! The paper evaluates its flow on two families of viable-function sets:
//!
//! * the **16 optimal 4-bit S-boxes** of Leander and Poschmann
//!   ("On the classification of 4 bit S-boxes", WAIFI 2007) — class
//!   representatives G0…G15, each a bijective 4→4 function with optimal
//!   linearity (8) and differential uniformity (4). The PRESENT S-box is
//!   affine-equivalent to one of these classes; the paper calls the merged
//!   circuits built from them "PRESENT S-boxes".
//! * the **8 DES S-boxes**, each a 6→4 function of roughly 150 GE.
//!
//! The [`properties`] module provides the cryptographic property
//! computations (Walsh linearity, differential uniformity, bijectivity)
//! used to validate the tables and available to downstream users.
//!
//! # Example
//!
//! ```
//! use mvf_sboxes::{optimal_sboxes, present_sbox, properties};
//!
//! let g = optimal_sboxes();
//! assert_eq!(g.len(), 16);
//! assert!(g.iter().all(|s| s.is_bijection()));
//! assert_eq!(properties::differential_uniformity(&present_sbox()), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod properties;

use mvf_logic::VectorFunction;

/// The PRESENT block-cipher S-box (Bogdanov et al., CHES 2007).
pub const PRESENT_TABLE: [u16; 16] = [
    0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
];

/// The 16 optimal 4-bit S-box class representatives G0…G15 of Leander and
/// Poschmann (WAIFI 2007), transcribed from Table 6 of that paper.
pub const OPTIMAL_TABLES: [[u16; 16]; 16] = [
    [0, 1, 2, 13, 4, 7, 15, 6, 8, 11, 12, 9, 3, 14, 10, 5],
    [0, 1, 2, 13, 4, 7, 15, 6, 8, 11, 14, 3, 5, 9, 10, 12],
    [0, 1, 2, 13, 4, 7, 15, 6, 8, 11, 14, 3, 10, 12, 5, 9],
    [0, 1, 2, 13, 4, 7, 15, 6, 8, 12, 5, 3, 10, 14, 11, 9],
    [0, 1, 2, 13, 4, 7, 15, 6, 8, 12, 9, 11, 10, 14, 5, 3],
    [0, 1, 2, 13, 4, 7, 15, 6, 8, 12, 11, 9, 10, 14, 3, 5],
    [0, 1, 2, 13, 4, 7, 15, 6, 8, 12, 11, 9, 10, 14, 5, 3],
    [0, 1, 2, 13, 4, 7, 15, 6, 8, 12, 14, 11, 10, 9, 3, 5],
    [0, 1, 2, 13, 4, 7, 15, 6, 8, 14, 9, 5, 10, 11, 3, 12],
    [0, 1, 2, 13, 4, 7, 15, 6, 8, 14, 11, 3, 5, 9, 10, 12],
    [0, 1, 2, 13, 4, 7, 15, 6, 8, 14, 11, 5, 10, 9, 3, 12],
    [0, 1, 2, 13, 4, 7, 15, 6, 8, 14, 11, 10, 5, 9, 12, 3],
    [0, 1, 2, 13, 4, 7, 15, 6, 8, 14, 11, 10, 9, 3, 12, 5],
    [0, 1, 2, 13, 4, 7, 15, 6, 8, 14, 12, 9, 5, 11, 10, 3],
    [0, 1, 2, 13, 4, 7, 15, 6, 8, 14, 12, 11, 3, 9, 5, 10],
    [0, 1, 2, 13, 4, 7, 15, 6, 8, 14, 12, 11, 9, 3, 10, 5],
];

/// The 8 DES S-boxes in the standard FIPS 46 4×16 row layout.
///
/// `DES_TABLES[i][row][col]` is the output of S-box `i+1`.
pub const DES_TABLES: [[[u16; 16]; 4]; 8] = [
    [
        [14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7],
        [0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8],
        [4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0],
        [15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13],
    ],
    [
        [15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10],
        [3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5],
        [0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15],
        [13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9],
    ],
    [
        [10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8],
        [13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1],
        [13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7],
        [1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12],
    ],
    [
        [7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15],
        [13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9],
        [10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4],
        [3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14],
    ],
    [
        [2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9],
        [14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6],
        [4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14],
        [11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3],
    ],
    [
        [12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11],
        [10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8],
        [9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6],
        [4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13],
    ],
    [
        [4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1],
        [13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6],
        [1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2],
        [6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12],
    ],
    [
        [13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7],
        [1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2],
        [7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8],
        [2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11],
    ],
];

/// The PRESENT S-box as a 4→4 [`VectorFunction`].
pub fn present_sbox() -> VectorFunction {
    VectorFunction::from_lookup_table(4, 4, &PRESENT_TABLE).expect("valid table")
}

/// Optimal S-box representative `Gi`.
///
/// # Panics
///
/// Panics if `i >= 16`.
pub fn optimal_sbox(i: usize) -> VectorFunction {
    VectorFunction::from_lookup_table(4, 4, &OPTIMAL_TABLES[i]).expect("valid table")
}

/// All 16 optimal 4-bit S-box representatives G0…G15.
pub fn optimal_sboxes() -> Vec<VectorFunction> {
    (0..16).map(optimal_sbox).collect()
}

/// DES S-box `i+1` (0-based `i`) as a 6→4 [`VectorFunction`].
///
/// The 6-bit input `m` uses the FIPS 46 convention with bit 5 (MSB) and
/// bit 0 (LSB) selecting the row and bits 4…1 the column:
/// `row = 2·m₅ + m₀`, `col = (m >> 1) & 0xF`.
///
/// # Panics
///
/// Panics if `i >= 8`.
pub fn des_sbox(i: usize) -> VectorFunction {
    let t = &DES_TABLES[i];
    let mut flat = vec![0u16; 64];
    for (m, slot) in flat.iter_mut().enumerate() {
        let row = ((m >> 4) & 2) | (m & 1);
        let col = (m >> 1) & 0xF;
        *slot = t[row][col];
    }
    VectorFunction::from_lookup_table(6, 4, &flat).expect("valid table")
}

/// All 8 DES S-boxes.
pub fn des_sboxes() -> Vec<VectorFunction> {
    (0..8).map(des_sbox).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{differential_uniformity, linearity};

    #[test]
    fn present_is_the_standard_table() {
        let s = present_sbox();
        assert_eq!(s.eval(0x0), 0xC);
        assert_eq!(s.eval(0x5), 0x0);
        assert_eq!(s.eval(0xF), 0x2);
        assert!(s.is_bijection());
    }

    #[test]
    fn optimal_sboxes_are_bijections_and_distinct() {
        let g = optimal_sboxes();
        for (i, s) in g.iter().enumerate() {
            assert!(s.is_bijection(), "G{i} not a bijection");
        }
        for i in 0..16 {
            for j in (i + 1)..16 {
                assert_ne!(g[i], g[j], "G{i} == G{j}");
            }
        }
    }

    #[test]
    fn optimal_sboxes_are_optimal() {
        // Leander–Poschmann optimality: Lin(S) = 8 and Diff(S) = 4.
        for (i, s) in optimal_sboxes().iter().enumerate() {
            assert_eq!(linearity(s), 8, "G{i} linearity");
            assert_eq!(
                differential_uniformity(s),
                4,
                "G{i} differential uniformity"
            );
        }
    }

    #[test]
    fn present_sbox_is_optimal() {
        let s = present_sbox();
        assert_eq!(linearity(&s), 8);
        assert_eq!(differential_uniformity(&s), 4);
    }

    #[test]
    fn des_sboxes_have_standard_spot_values() {
        // S1(0b000000): row 0 col 0 -> 14.
        assert_eq!(des_sbox(0).eval(0), 14);
        // Classic textbook example: S1 input 0b011011 -> row 0b01=1,
        // col 0b1101=13 -> 5.
        assert_eq!(des_sbox(0).eval(0b011011), 5);
        // S8 input all-ones: row 3, col 15 -> 11.
        assert_eq!(des_sbox(7).eval(0b111111), 11);
        // S5 row 1 col 0 (m = 0b000001): 14.
        assert_eq!(des_sbox(4).eval(1), 14);
    }

    #[test]
    fn des_sboxes_balanced_rows() {
        // Each DES S-box row is a permutation of 0..=15, so every output
        // value appears exactly 4 times overall.
        for (i, s) in des_sboxes().iter().enumerate() {
            let mut counts = [0usize; 16];
            for m in 0..64 {
                counts[s.eval(m) as usize] += 1;
            }
            assert!(
                counts.iter().all(|&c| c == 4),
                "S{} unbalanced: {counts:?}",
                i + 1
            );
        }
    }

    #[test]
    fn des_sboxes_are_distinct() {
        let s = des_sboxes();
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert_ne!(s[i], s[j], "S{} == S{}", i + 1, j + 1);
            }
        }
    }
}
