//! The shared tree-covering dynamic-programming engine.
//!
//! Both mappers classify the subject netlist into fanout-free trees, then
//! run the DP of the paper's Alg. 1: for every cell in topological order,
//! enumerate candidate subtrees rooted at it (bounded depth, bounded data
//! leaves), characterize each subtree by its function set under select
//! abstraction (`ABSFUNC`), ask a matcher for the cheapest library cell
//! covering that set, and keep the cheapest total cover. Chosen covers are
//! then emitted root-by-root into a fresh netlist.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use mvf_cells::{CamoLibrary, Library};
use mvf_logic::{TruthTable, TtArena};
use mvf_netlist::{CellId, CellRef, NetId, Netlist};

/// Reusable engine-level working memory for the covering DP.
///
/// Subtree enumeration and characterization are the per-cell hot loop of
/// both mappers. The seed implementation allocated nested
/// `Vec<Vec<NetId>>` leaf sets and a fresh `HashMap<NetId, TruthTable>`
/// environment per candidate subtree; this scratch flattens both onto
/// reusable arenas — a flat leaf-set pool with `(start, end)` ranges and
/// a [`TtArena`]-backed cone evaluation — so a warm mapping call performs
/// no per-subtree allocation. Reuse never changes a mapping decision.
#[derive(Debug, Default)]
pub struct EngineScratch {
    pub(crate) leaf: LeafScratch,
    pub(crate) cone: ConeScratch,
}

/// Flat leaf-set enumeration state: all candidate sets of the current
/// cell live in one `NetId` pool addressed by ranges.
#[derive(Debug, Default)]
pub(crate) struct LeafScratch {
    /// The leaf-set arena; every set is a contiguous run.
    pool: Vec<NetId>,
    /// All produced sets (raw, pre-dedup) as ranges into `pool`.
    sets: Vec<(u32, u32)>,
    /// The deduplicated, budget-pruned survivors (ranges into `pool`).
    kept: Vec<(u32, u32)>,
    /// Per-input option lists: ranges into `opt_idx`, stack-disciplined
    /// across the enumeration recursion.
    input_opts: Vec<(u32, u32)>,
    /// Flat option storage: indices into `sets`.
    opt_idx: Vec<u32>,
    /// The set under construction during the cross product.
    cur: Vec<NetId>,
    /// Sorted-key arena for dedup (one key per kept set).
    key_pool: Vec<u32>,
    key_ranges: Vec<(u32, u32)>,
    key_buf: Vec<u32>,
}

/// Cone-evaluation state: one [`TtArena`] slot per cone net, grown on
/// demand, plus the reused net→slot binding map.
#[derive(Debug, Default)]
pub(crate) struct ConeScratch {
    arena: TtArena,
    slots: HashMap<NetId, usize>,
    /// Stack-disciplined pin-slot buffer for the recursive evaluation.
    pins: Vec<usize>,
    next_slot: usize,
}

impl ConeScratch {
    fn alloc_slot(&mut self) -> usize {
        let s = self.next_slot;
        self.next_slot += 1;
        self.arena.ensure_slots(self.next_slot);
        s
    }
}

/// Errors reported by the mappers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum MapError {
    /// No candidate subtree at the named cell matched any library cell.
    NoMatch {
        /// The subject-netlist cell that could not be covered.
        cell: String,
    },
    /// The subject netlist failed its structural check.
    BadSubject(String),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::NoMatch { cell } => {
                write!(f, "no library cell covers any subtree rooted at {cell}")
            }
            MapError::BadSubject(e) => write!(f, "subject netlist is malformed: {e}"),
        }
    }
}

impl Error for MapError {}

/// What a matcher proposes for one candidate subtree.
pub(crate) struct Match {
    /// The chosen library cell.
    pub cell: CellRef,
    /// Pin assignment: data leaf `v` connects to pin `perm[v]`.
    pub pin_perm: Vec<usize>,
    /// Required pin-space function per select assignment (length
    /// `2^n_selects`, or 1 when no selects are involved).
    pub funcs_by_assign: Vec<TruthTable>,
    /// Cell area in GE.
    pub area: f64,
    /// The subtree's data leaves must be replaced by this (used by the
    /// constant-with-selects trick, where a camouflaged inverter is fed an
    /// arbitrary net).
    pub override_leaves: Option<Vec<NetId>>,
}

/// One candidate subtree rooted at a cell.
pub(crate) struct Subtree {
    /// Distinct non-select, non-constant leaf nets in first-seen order.
    pub data_leaves: Vec<NetId>,
    /// Distinct select leaf nets in first-seen order.
    pub select_leaves: Vec<NetId>,
    /// The set of functions over the data leaves, one per select
    /// assignment, deduplicated. `funcs[a]` corresponds to assignment `a`
    /// over `select_leaves` *before* dedup — kept per-assignment.
    pub funcs_by_assign: Vec<TruthTable>,
}

/// The chosen cover of one subject cell.
pub(crate) struct Choice {
    pub leaves: Vec<NetId>,
    pub select_leaves: Vec<NetId>,
    pub cell: CellRef,
    pub pin_perm: Vec<usize>,
    pub funcs_by_assign: Vec<TruthTable>,
}

pub(crate) struct Engine<'a> {
    pub nl: &'a Netlist,
    pub lib: &'a Library,
    pub camo: Option<&'a CamoLibrary>,
    /// Nets carrying constants (driven by tie cells), with their value.
    pub const_nets: HashMap<NetId, bool>,
    /// Global select-input indices by net.
    pub select_nets: HashMap<NetId, usize>,
    pub fanouts: Vec<u32>,
    pub max_depth: usize,
    pub max_data_leaves: usize,
    pub max_selects: usize,
}

impl<'a> Engine<'a> {
    pub fn new(
        nl: &'a Netlist,
        lib: &'a Library,
        camo: Option<&'a CamoLibrary>,
        select_inputs: &[usize],
        max_depth: usize,
        max_data_leaves: usize,
        max_selects: usize,
    ) -> Result<Self, MapError> {
        nl.check_with_camo(lib, camo)
            .map_err(|e| MapError::BadSubject(e.to_string()))?;
        let mut const_nets = HashMap::new();
        for (_, c) in nl.cells() {
            if let CellRef::Std(id) = c.cell {
                let f = lib.cell(id).function();
                if f.n_vars() == 0 {
                    const_nets.insert(c.output, f.is_one());
                }
            }
        }
        // Map each select net to its *position* in the select list (bit
        // index of the select value), not its raw input index.
        let mut select_nets = HashMap::new();
        for (pos, &idx) in select_inputs.iter().enumerate() {
            let net = nl.inputs()[idx];
            select_nets.insert(net, pos);
        }
        Ok(Engine {
            nl,
            lib,
            camo,
            const_nets,
            select_nets,
            fanouts: nl.fanout_counts(),
            max_depth,
            max_data_leaves,
            max_selects,
        })
    }

    /// `true` iff the net may be expanded through during subtree
    /// enumeration: cell-driven, single fanout, not constant.
    fn expandable(&self, net: NetId) -> Option<CellId> {
        if self.const_nets.contains_key(&net) {
            return None;
        }
        if self.fanouts[net.0 as usize] != 1 {
            return None;
        }
        self.nl.driver(net)
    }

    /// Enumerates the leaf sets of candidate subtrees rooted at `cell`
    /// into the flat scratch: on return, `s.kept` holds the ranges of the
    /// deduplicated, budget-pruned sets inside `s.pool`.
    ///
    /// The produced sets (contents and order) are identical to the seed
    /// nested-`Vec` enumeration; only the storage is flat and reused.
    fn leaf_sets_into(&self, cell: CellId, s: &mut LeafScratch) {
        // Emits the cross product over the per-input option lists
        // `input_opts[opts_base..]`, extending the set under construction
        // in `s.cur` (first-seen order, deduplicated) and writing every
        // completed set into the pool. Input 0 is the outermost loop, so
        // the emission order matches the seed implementation.
        fn product(s: &mut LeafScratch, opts_base: usize, n_inputs: usize, i: usize) {
            if i == n_inputs {
                let start = s.pool.len() as u32;
                for k in 0..s.cur.len() {
                    let n = s.cur[k];
                    s.pool.push(n);
                }
                s.sets.push((start, s.pool.len() as u32));
                return;
            }
            let (os, oe) = s.input_opts[opts_base + i];
            for oi in os..oe {
                let (ps, pe) = s.sets[s.opt_idx[oi as usize] as usize];
                let save = s.cur.len();
                for p in ps..pe {
                    let n = s.pool[p as usize];
                    if !s.cur.contains(&n) {
                        s.cur.push(n);
                    }
                }
                product(s, opts_base, n_inputs, i + 1);
                s.cur.truncate(save);
            }
        }
        // Produces the candidate sets of `cell` at `depth`; returns their
        // index range in `s.sets`. Per-input options are the input net
        // itself plus (when expandable) the child's recursive sets.
        fn rec(eng: &Engine<'_>, cell: CellId, depth: usize, s: &mut LeafScratch) -> (u32, u32) {
            let inputs = &eng.nl.cell(cell).inputs;
            let opts_base = s.input_opts.len();
            let oi_save = s.opt_idx.len();
            for &net in inputs {
                let oi_start = s.opt_idx.len() as u32;
                let p0 = s.pool.len() as u32;
                s.pool.push(net);
                s.sets.push((p0, p0 + 1));
                s.opt_idx.push((s.sets.len() - 1) as u32);
                if depth > 1 {
                    if let Some(child) = eng.expandable(net) {
                        let (cs, ce) = rec(eng, child, depth - 1, s);
                        s.opt_idx.extend(cs..ce);
                    }
                }
                s.input_opts.push((oi_start, s.opt_idx.len() as u32));
            }
            let out_start = s.sets.len() as u32;
            product(s, opts_base, inputs.len(), 0);
            let out_end = s.sets.len() as u32;
            s.input_opts.truncate(opts_base);
            s.opt_idx.truncate(oi_save);
            (out_start, out_end)
        }
        s.pool.clear();
        s.sets.clear();
        s.kept.clear();
        s.key_pool.clear();
        s.key_ranges.clear();
        debug_assert!(s.input_opts.is_empty() && s.opt_idx.is_empty() && s.cur.is_empty());
        let (raw_start, raw_end) = rec(self, cell, self.max_depth, s);
        // Dedup by sorted key and prune by leaf budgets, keeping the
        // first occurrence — exactly the seed `BTreeSet` behavior.
        for si in raw_start..raw_end {
            let (ps, pe) = s.sets[si as usize];
            let mut data = 0usize;
            let mut sel = 0usize;
            for p in ps..pe {
                let n = s.pool[p as usize];
                if self.const_nets.contains_key(&n) {
                    continue;
                }
                if self.select_nets.contains_key(&n) {
                    sel += 1;
                } else {
                    data += 1;
                }
            }
            if data > self.max_data_leaves || sel > self.max_selects {
                continue;
            }
            s.key_buf.clear();
            for p in ps..pe {
                s.key_buf.push(s.pool[p as usize].0);
            }
            s.key_buf.sort_unstable();
            let duplicate = s
                .key_ranges
                .iter()
                .any(|&(ks, ke)| s.key_pool[ks as usize..ke as usize] == s.key_buf[..]);
            if !duplicate {
                let ks = s.key_pool.len() as u32;
                s.key_pool.extend_from_slice(&s.key_buf);
                s.key_ranges.push((ks, s.key_pool.len() as u32));
                s.kept.push((ps, pe));
            }
        }
    }

    /// Computes the subtree characterization (ABSFUNC) for one leaf set,
    /// evaluating the cone through the scratch [`TtArena`] — one slot per
    /// cone net, no per-net `TruthTable` allocation.
    fn characterize_with(&self, root: CellId, leaves: &[NetId], cone: &mut ConeScratch) -> Subtree {
        let mut data_leaves = Vec::new();
        let mut select_leaves = Vec::new();
        for &n in leaves {
            if self.const_nets.contains_key(&n) {
                continue;
            }
            if self.select_nets.contains_key(&n) {
                select_leaves.push(n);
            } else {
                data_leaves.push(n);
            }
        }
        let k = data_leaves.len();
        let s = select_leaves.len();
        let n_vars = k + s;
        cone.slots.clear();
        cone.next_slot = 0;
        cone.arena.reset(n_vars, leaves.len() + 2);
        debug_assert!(cone.pins.is_empty());
        for (i, &n) in data_leaves.iter().enumerate() {
            let slot = cone.alloc_slot();
            cone.arena.write_var(slot, i);
            cone.slots.insert(n, slot);
        }
        for (j, &n) in select_leaves.iter().enumerate() {
            let slot = cone.alloc_slot();
            cone.arena.write_var(slot, k + j);
            cone.slots.insert(n, slot);
        }
        // One shared minterm-product slot for every composition below.
        let tmp = cone.alloc_slot();
        let root_slot = self.eval_cone_slots(root, tmp, cone);
        let f = cone.arena.to_table(root_slot);
        // ABSFUNC: one function per select assignment, projected onto the
        // data variables.
        let data_vars: Vec<usize> = (0..k).collect();
        let mut funcs = Vec::with_capacity(1 << s);
        for a in 0..(1usize << s) {
            let mut g = f.clone();
            for j in 0..s {
                g = g.cofactor(k + j, a & (1 << j) != 0);
            }
            funcs.push(g.project(&data_vars));
        }
        Subtree {
            data_leaves,
            select_leaves,
            funcs_by_assign: funcs,
        }
    }

    /// Evaluates the function of `root`'s output into a fresh arena slot.
    /// Leaf nets are pre-bound in `cone.slots`; interior nets are bound as
    /// they are computed (memoized across the cone); constants bind
    /// lazily.
    fn eval_cone_slots(&self, root: CellId, tmp: usize, cone: &mut ConeScratch) -> usize {
        let cell = self.nl.cell(root);
        let pin_base = cone.pins.len();
        for &net in &cell.inputs {
            let slot = if let Some(&slot) = cone.slots.get(&net) {
                slot
            } else if let Some(&v) = self.const_nets.get(&net) {
                let slot = cone.alloc_slot();
                if v {
                    cone.arena.write_one(slot);
                } else {
                    cone.arena.write_zero(slot);
                }
                cone.slots.insert(net, slot);
                slot
            } else {
                let child = self
                    .nl
                    .driver(net)
                    .expect("leaf set must cover the cone frontier");
                let slot = self.eval_cone_slots(child, tmp, cone);
                cone.slots.insert(net, slot);
                slot
            };
            cone.pins.push(slot);
        }
        let f = match cell.cell {
            CellRef::Std(id) => self.lib.cell(id).function(),
            CellRef::Camo(_) => {
                unreachable!("subject netlists contain standard cells only")
            }
        };
        let dst = cone.alloc_slot();
        // Shannon-style substitution, arena edition: OR over f's minterms
        // of the complement-aware product of the pin slots.
        cone.arena.write_zero(dst);
        for m in 0..f.n_minterms() {
            if !f.get(m) {
                continue;
            }
            cone.arena.write_one(tmp);
            for (i, &p) in cone.pins[pin_base..].iter().enumerate() {
                cone.arena.and_in_place(tmp, p, m & (1 << i) == 0);
            }
            cone.arena.or_in_place(dst, tmp);
        }
        cone.pins.truncate(pin_base);
        dst
    }

    /// Runs the covering DP with the supplied matcher and returns per-cell
    /// choices and costs. The scratch carries the flat enumeration and
    /// cone-evaluation arenas across cells (and, via the mappers'
    /// `MatchScratch`, across calls).
    pub fn cover<M>(
        &self,
        mut matcher: M,
        scratch: &mut EngineScratch,
    ) -> Result<(HashMap<CellId, Choice>, HashMap<CellId, f64>), MapError>
    where
        M: FnMut(&Subtree) -> Option<Match>,
    {
        let mut costs: HashMap<CellId, f64> = HashMap::new();
        let mut choices: HashMap<CellId, Choice> = HashMap::new();
        let EngineScratch { leaf, cone } = scratch;
        for cell in self.nl.topo_cells() {
            let out = self.nl.cell(cell).output;
            if self.const_nets.contains_key(&out) {
                continue; // tie cells are emitted directly
            }
            let mut best: Option<(f64, Choice)> = None;
            self.leaf_sets_into(cell, leaf);
            for ki in 0..leaf.kept.len() {
                let (ls, le) = leaf.kept[ki];
                let st = self.characterize_with(cell, &leaf.pool[ls as usize..le as usize], cone);
                let Some(m) = matcher(&st) else { continue };
                let mut cost = m.area;
                let chosen_leaves = m.override_leaves.unwrap_or_else(|| st.data_leaves.clone());
                for &leaf in &st.data_leaves {
                    if let Some(d) = self.nl.driver(leaf) {
                        if !self.const_nets.contains_key(&leaf)
                            && self.fanouts[leaf.0 as usize] == 1
                        {
                            cost += costs.get(&d).copied().unwrap_or(f64::INFINITY);
                        }
                        // Multi-fanout leaves are tree inputs: their
                        // cost is paid once at their own root.
                    }
                }
                if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                    best = Some((
                        cost,
                        Choice {
                            leaves: chosen_leaves,
                            select_leaves: st.select_leaves.clone(),
                            cell: m.cell,
                            pin_perm: m.pin_perm,
                            funcs_by_assign: m.funcs_by_assign,
                        },
                    ));
                }
            }
            let Some((cost, choice)) = best else {
                return Err(MapError::NoMatch {
                    cell: self.nl.cell(cell).name.clone(),
                });
            };
            costs.insert(cell, cost);
            choices.insert(cell, choice);
        }
        Ok((choices, costs))
    }

    /// Emits the chosen covers into a fresh netlist. Select inputs are
    /// dropped from the interface when `drop_selects` is set (camouflage
    /// mapping); otherwise they are kept (plain mapping never has any).
    ///
    /// Returns the netlist plus, for every emitted camouflaged cell, its
    /// witness `(mapped cell, select input indices, pin-space function per
    /// select assignment)`.
    pub fn emit(
        &self,
        choices: &HashMap<CellId, Choice>,
        drop_selects: bool,
        name: &str,
    ) -> (Netlist, Vec<(CellId, Vec<usize>, Vec<TruthTable>)>) {
        let mut out = Netlist::new(name);
        let mut net_map: HashMap<NetId, NetId> = HashMap::new();
        for &pi in self.nl.inputs() {
            if drop_selects && self.select_nets.contains_key(&pi) {
                continue;
            }
            let mapped = out.add_input(self.nl.net_name(pi).to_string());
            net_map.insert(pi, mapped);
        }
        let mut tie_map: HashMap<bool, NetId> = HashMap::new();
        let mut emitted: HashMap<CellId, NetId> = HashMap::new();
        let mut witnesses = Vec::new();

        // Iterative emission over required nets.
        fn emit_net(
            eng: &Engine<'_>,
            net: NetId,
            out: &mut Netlist,
            net_map: &mut HashMap<NetId, NetId>,
            tie_map: &mut HashMap<bool, NetId>,
            emitted: &mut HashMap<CellId, NetId>,
            choices: &HashMap<CellId, Choice>,
            witnesses: &mut Vec<(CellId, Vec<usize>, Vec<TruthTable>)>,
        ) -> NetId {
            if let Some(&m) = net_map.get(&net) {
                return m;
            }
            if let Some(&v) = eng.const_nets.get(&net) {
                if let Some(&t) = tie_map.get(&v) {
                    net_map.insert(net, t);
                    return t;
                }
                let kind = if v {
                    mvf_cells::CellKind::Tie1
                } else {
                    mvf_cells::CellKind::Tie0
                };
                let id = eng.lib.cell_by_kind(kind).expect("tie cells in library");
                let (_, t) = out.add_cell(format!("tie{}", v as u8), CellRef::Std(id), vec![]);
                tie_map.insert(v, t);
                net_map.insert(net, t);
                return t;
            }
            let driver = eng
                .nl
                .driver(net)
                .expect("net without driver reached during emission");
            if let Some(&t) = emitted.get(&driver) {
                net_map.insert(net, t);
                return t;
            }
            let choice = &choices[&driver];
            let mut mapped_leaves = Vec::with_capacity(choice.leaves.len());
            for &leaf in &choice.leaves {
                mapped_leaves.push(emit_net(
                    eng, leaf, out, net_map, tie_map, emitted, choices, witnesses,
                ));
            }
            // Pin order: leaf v goes to pin pin_perm[v].
            let n_pins = match choice.cell {
                CellRef::Std(id) => eng.lib.cell(id).n_inputs(),
                CellRef::Camo(id) => eng.camo.expect("camo library present").cell(id).n_inputs(),
            };
            let mut pins = vec![NetId(u32::MAX); n_pins];
            for (v, &leaf) in mapped_leaves.iter().enumerate() {
                pins[choice.pin_perm[v]] = leaf;
            }
            // Unused pins (possible only for the camouflaged-constant
            // trick) are tied to the first mapped leaf or, failing that,
            // the lowest already-emitted net — a deterministic choice, so
            // repeated runs emit identical netlists.
            let filler = mapped_leaves.first().copied().unwrap_or_else(|| {
                net_map
                    .values()
                    .copied()
                    .min_by_key(|n| n.0)
                    .expect("at least one net")
            });
            for p in pins.iter_mut() {
                if p.0 == u32::MAX {
                    *p = filler;
                }
            }
            let inst_name = format!("m{}", out.n_cells());
            let (cid, mapped_out) = out.add_cell(inst_name, choice.cell, pins);
            if matches!(choice.cell, CellRef::Camo(_)) {
                let select_ids: Vec<usize> = choice
                    .select_leaves
                    .iter()
                    .map(|n| eng.select_nets[n])
                    .collect();
                witnesses.push((cid, select_ids, choice.funcs_by_assign.clone()));
            }
            emitted.insert(driver, mapped_out);
            net_map.insert(net, mapped_out);
            mapped_out
        }

        for (po_name, po_net) in self.nl.outputs() {
            let mapped = emit_net(
                self,
                *po_net,
                &mut out,
                &mut net_map,
                &mut tie_map,
                &mut emitted,
                choices,
                &mut witnesses,
            );
            out.add_output(po_name.clone(), mapped);
        }
        (out, witnesses)
    }
}

/// Composes `f(pins)` with the pin functions: substitutes `pin_tts[i]` for
/// variable `i` of `f`. The allocating reference implementation of the
/// arena-backed substitution in [`Engine::eval_cone_slots`]; kept as the
/// oracle for the equivalence tests.
#[cfg(test)]
pub(crate) fn compose(f: &TruthTable, pin_tts: &[TruthTable], n_vars: usize) -> TruthTable {
    // Shannon-style substitution: iterate over f's minterms.
    let mut acc = TruthTable::zero(n_vars);
    for m in 0..f.n_minterms() {
        if !f.get(m) {
            continue;
        }
        let mut term = TruthTable::one(n_vars);
        for (i, t) in pin_tts.iter().enumerate() {
            term = if m & (1 << i) != 0 {
                term.and(t)
            } else {
                term.and(&t.not())
            };
        }
        acc = acc.or(&term);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_substitutes_correctly() {
        // f = AND2(x0, x1); pins = (a ∨ b, ¬c) over 3 vars.
        let f = mvf_cells::CellKind::And(2).function();
        let a = TruthTable::var(0, 3);
        let b = TruthTable::var(1, 3);
        let c = TruthTable::var(2, 3);
        let got = compose(&f, &[a.or(&b), c.not()], 3);
        assert_eq!(got, a.or(&b).and(&c.not()));
    }

    #[test]
    fn compose_handles_inverter() {
        let f = mvf_cells::CellKind::Inv.function();
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let got = compose(&f, &[a.xor(&b)], 2);
        assert_eq!(got, a.xor(&b).not());
    }

    #[test]
    fn compose_constant_cell() {
        let f = mvf_cells::CellKind::Tie1.function();
        let got = compose(&f, &[], 2);
        assert!(got.is_one());
    }
}
