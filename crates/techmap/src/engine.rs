//! The shared tree-covering dynamic-programming engine.
//!
//! Both mappers classify the subject netlist into fanout-free trees, then
//! run the DP of the paper's Alg. 1: for every cell in topological order,
//! enumerate candidate subtrees rooted at it (bounded depth, bounded data
//! leaves), characterize each subtree by its function set under select
//! abstraction (`ABSFUNC`), ask a matcher for the cheapest library cell
//! covering that set, and keep the cheapest total cover. Chosen covers are
//! then emitted root-by-root into a fresh netlist.

use std::collections::{BTreeSet, HashMap};
use std::error::Error;
use std::fmt;

use mvf_cells::{CamoLibrary, Library};
use mvf_logic::TruthTable;
use mvf_netlist::{CellId, CellRef, NetId, Netlist};

/// Errors reported by the mappers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum MapError {
    /// No candidate subtree at the named cell matched any library cell.
    NoMatch {
        /// The subject-netlist cell that could not be covered.
        cell: String,
    },
    /// The subject netlist failed its structural check.
    BadSubject(String),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::NoMatch { cell } => {
                write!(f, "no library cell covers any subtree rooted at {cell}")
            }
            MapError::BadSubject(e) => write!(f, "subject netlist is malformed: {e}"),
        }
    }
}

impl Error for MapError {}

/// What a matcher proposes for one candidate subtree.
pub(crate) struct Match {
    /// The chosen library cell.
    pub cell: CellRef,
    /// Pin assignment: data leaf `v` connects to pin `perm[v]`.
    pub pin_perm: Vec<usize>,
    /// Required pin-space function per select assignment (length
    /// `2^n_selects`, or 1 when no selects are involved).
    pub funcs_by_assign: Vec<TruthTable>,
    /// Cell area in GE.
    pub area: f64,
    /// The subtree's data leaves must be replaced by this (used by the
    /// constant-with-selects trick, where a camouflaged inverter is fed an
    /// arbitrary net).
    pub override_leaves: Option<Vec<NetId>>,
}

/// One candidate subtree rooted at a cell.
pub(crate) struct Subtree {
    /// Distinct non-select, non-constant leaf nets in first-seen order.
    pub data_leaves: Vec<NetId>,
    /// Distinct select leaf nets in first-seen order.
    pub select_leaves: Vec<NetId>,
    /// The set of functions over the data leaves, one per select
    /// assignment, deduplicated. `funcs[a]` corresponds to assignment `a`
    /// over `select_leaves` *before* dedup — kept per-assignment.
    pub funcs_by_assign: Vec<TruthTable>,
}

/// The chosen cover of one subject cell.
pub(crate) struct Choice {
    pub leaves: Vec<NetId>,
    pub select_leaves: Vec<NetId>,
    pub cell: CellRef,
    pub pin_perm: Vec<usize>,
    pub funcs_by_assign: Vec<TruthTable>,
}

pub(crate) struct Engine<'a> {
    pub nl: &'a Netlist,
    pub lib: &'a Library,
    pub camo: Option<&'a CamoLibrary>,
    /// Nets carrying constants (driven by tie cells), with their value.
    pub const_nets: HashMap<NetId, bool>,
    /// Global select-input indices by net.
    pub select_nets: HashMap<NetId, usize>,
    pub fanouts: Vec<u32>,
    pub max_depth: usize,
    pub max_data_leaves: usize,
    pub max_selects: usize,
}

impl<'a> Engine<'a> {
    pub fn new(
        nl: &'a Netlist,
        lib: &'a Library,
        camo: Option<&'a CamoLibrary>,
        select_inputs: &[usize],
        max_depth: usize,
        max_data_leaves: usize,
        max_selects: usize,
    ) -> Result<Self, MapError> {
        nl.check_with_camo(lib, camo)
            .map_err(|e| MapError::BadSubject(e.to_string()))?;
        let mut const_nets = HashMap::new();
        for (_, c) in nl.cells() {
            if let CellRef::Std(id) = c.cell {
                let f = lib.cell(id).function();
                if f.n_vars() == 0 {
                    const_nets.insert(c.output, f.is_one());
                }
            }
        }
        // Map each select net to its *position* in the select list (bit
        // index of the select value), not its raw input index.
        let mut select_nets = HashMap::new();
        for (pos, &idx) in select_inputs.iter().enumerate() {
            let net = nl.inputs()[idx];
            select_nets.insert(net, pos);
        }
        Ok(Engine {
            nl,
            lib,
            camo,
            const_nets,
            select_nets,
            fanouts: nl.fanout_counts(),
            max_depth,
            max_data_leaves,
            max_selects,
        })
    }

    /// `true` iff the net may be expanded through during subtree
    /// enumeration: cell-driven, single fanout, not constant.
    fn expandable(&self, net: NetId) -> Option<CellId> {
        if self.const_nets.contains_key(&net) {
            return None;
        }
        if self.fanouts[net.0 as usize] != 1 {
            return None;
        }
        self.nl.driver(net)
    }

    /// Enumerates the leaf sets of candidate subtrees rooted at `cell`.
    fn leaf_sets(&self, cell: CellId) -> Vec<Vec<NetId>> {
        // Recursively expand; a "leaf set" is the ordered list of distinct
        // frontier nets (selects and constants included at this stage).
        fn rec(eng: &Engine<'_>, cell: CellId, depth: usize, out: &mut Vec<Vec<NetId>>) {
            let inputs = &eng.nl.cell(cell).inputs;
            // Options per input: Vec of leaf-lists.
            let mut per_input: Vec<Vec<Vec<NetId>>> = Vec::with_capacity(inputs.len());
            for &net in inputs {
                let mut opts = vec![vec![net]];
                if depth > 1 {
                    if let Some(child) = eng.expandable(net) {
                        let mut child_sets = Vec::new();
                        rec(eng, child, depth - 1, &mut child_sets);
                        opts.extend(child_sets);
                    }
                }
                per_input.push(opts);
            }
            // Cross product.
            let mut acc: Vec<Vec<NetId>> = vec![Vec::new()];
            for opts in per_input {
                let mut next = Vec::new();
                for prefix in &acc {
                    for opt in &opts {
                        let mut set = prefix.clone();
                        for &n in opt {
                            if !set.contains(&n) {
                                set.push(n);
                            }
                        }
                        next.push(set);
                    }
                }
                acc = next;
            }
            out.extend(acc);
        }
        let mut raw = Vec::new();
        rec(self, cell, self.max_depth, &mut raw);
        // Dedup by set and prune by leaf budgets.
        let mut seen: BTreeSet<Vec<u32>> = BTreeSet::new();
        let mut kept = Vec::new();
        for set in raw {
            let mut data = 0usize;
            let mut sel = 0usize;
            for &n in &set {
                if self.const_nets.contains_key(&n) {
                    continue;
                }
                if self.select_nets.contains_key(&n) {
                    sel += 1;
                } else {
                    data += 1;
                }
            }
            if data > self.max_data_leaves || sel > self.max_selects {
                continue;
            }
            let mut key: Vec<u32> = set.iter().map(|n| n.0).collect();
            key.sort_unstable();
            if seen.insert(key) {
                kept.push(set);
            }
        }
        kept
    }

    /// Computes the subtree characterization (ABSFUNC) for one leaf set.
    fn characterize(&self, root: CellId, leaves: &[NetId]) -> Subtree {
        let mut data_leaves = Vec::new();
        let mut select_leaves = Vec::new();
        for &n in leaves {
            if self.const_nets.contains_key(&n) {
                continue;
            }
            if self.select_nets.contains_key(&n) {
                select_leaves.push(n);
            } else {
                data_leaves.push(n);
            }
        }
        let k = data_leaves.len();
        let s = select_leaves.len();
        let n_vars = k + s;
        // Environment: data leaf i -> var i, select leaf j -> var k+j,
        // constants -> constant tables.
        let mut env: HashMap<NetId, TruthTable> = HashMap::new();
        for (i, &n) in data_leaves.iter().enumerate() {
            env.insert(n, TruthTable::var(i, n_vars));
        }
        for (j, &n) in select_leaves.iter().enumerate() {
            env.insert(n, TruthTable::var(k + j, n_vars));
        }
        for (&n, &v) in &self.const_nets {
            env.insert(n, TruthTable::constant(n_vars, v));
        }
        let f = self.eval_cone(root, &mut env.clone(), n_vars);
        // ABSFUNC: one function per select assignment, projected onto the
        // data variables.
        let data_vars: Vec<usize> = (0..k).collect();
        let mut funcs = Vec::with_capacity(1 << s);
        for a in 0..(1usize << s) {
            let mut g = f.clone();
            for j in 0..s {
                g = g.cofactor(k + j, a & (1 << j) != 0);
            }
            funcs.push(g.project(&data_vars));
        }
        Subtree {
            data_leaves,
            select_leaves,
            funcs_by_assign: funcs,
        }
    }

    /// Evaluates the function of `root`'s output over the environment
    /// (leaf nets pre-assigned).
    fn eval_cone(
        &self,
        root: CellId,
        env: &mut HashMap<NetId, TruthTable>,
        n_vars: usize,
    ) -> TruthTable {
        let cell = self.nl.cell(root);
        let mut pin_tts = Vec::with_capacity(cell.inputs.len());
        for &net in &cell.inputs {
            if let Some(t) = env.get(&net) {
                pin_tts.push(t.clone());
                continue;
            }
            let child = self
                .nl
                .driver(net)
                .expect("leaf set must cover the cone frontier");
            let t = self.eval_cone(child, env, n_vars);
            env.insert(net, t.clone());
            pin_tts.push(t);
        }
        let f = match cell.cell {
            CellRef::Std(id) => self.lib.cell(id).function().clone(),
            CellRef::Camo(_) => {
                unreachable!("subject netlists contain standard cells only")
            }
        };
        compose(&f, &pin_tts, n_vars)
    }

    /// Runs the covering DP with the supplied matcher and returns per-cell
    /// choices and costs.
    pub fn cover<M>(
        &self,
        mut matcher: M,
    ) -> Result<(HashMap<CellId, Choice>, HashMap<CellId, f64>), MapError>
    where
        M: FnMut(&Subtree) -> Option<Match>,
    {
        let mut costs: HashMap<CellId, f64> = HashMap::new();
        let mut choices: HashMap<CellId, Choice> = HashMap::new();
        for cell in self.nl.topo_cells() {
            let out = self.nl.cell(cell).output;
            if self.const_nets.contains_key(&out) {
                continue; // tie cells are emitted directly
            }
            let mut best: Option<(f64, Choice)> = None;
            for leaves in self.leaf_sets(cell) {
                let st = self.characterize(cell, &leaves);
                let Some(m) = matcher(&st) else { continue };
                let mut cost = m.area;
                let chosen_leaves = m.override_leaves.unwrap_or_else(|| st.data_leaves.clone());
                for &leaf in &st.data_leaves {
                    if let Some(d) = self.nl.driver(leaf) {
                        if !self.const_nets.contains_key(&leaf)
                            && self.fanouts[leaf.0 as usize] == 1
                        {
                            cost += costs.get(&d).copied().unwrap_or(f64::INFINITY);
                        }
                        // Multi-fanout leaves are tree inputs: their
                        // cost is paid once at their own root.
                    }
                }
                if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                    best = Some((
                        cost,
                        Choice {
                            leaves: chosen_leaves,
                            select_leaves: st.select_leaves.clone(),
                            cell: m.cell,
                            pin_perm: m.pin_perm,
                            funcs_by_assign: m.funcs_by_assign,
                        },
                    ));
                }
            }
            let Some((cost, choice)) = best else {
                return Err(MapError::NoMatch {
                    cell: self.nl.cell(cell).name.clone(),
                });
            };
            costs.insert(cell, cost);
            choices.insert(cell, choice);
        }
        Ok((choices, costs))
    }

    /// Emits the chosen covers into a fresh netlist. Select inputs are
    /// dropped from the interface when `drop_selects` is set (camouflage
    /// mapping); otherwise they are kept (plain mapping never has any).
    ///
    /// Returns the netlist plus, for every emitted camouflaged cell, its
    /// witness `(mapped cell, select input indices, pin-space function per
    /// select assignment)`.
    pub fn emit(
        &self,
        choices: &HashMap<CellId, Choice>,
        drop_selects: bool,
        name: &str,
    ) -> (Netlist, Vec<(CellId, Vec<usize>, Vec<TruthTable>)>) {
        let mut out = Netlist::new(name);
        let mut net_map: HashMap<NetId, NetId> = HashMap::new();
        for &pi in self.nl.inputs() {
            if drop_selects && self.select_nets.contains_key(&pi) {
                continue;
            }
            let mapped = out.add_input(self.nl.net_name(pi).to_string());
            net_map.insert(pi, mapped);
        }
        let mut tie_map: HashMap<bool, NetId> = HashMap::new();
        let mut emitted: HashMap<CellId, NetId> = HashMap::new();
        let mut witnesses = Vec::new();

        // Iterative emission over required nets.
        fn emit_net(
            eng: &Engine<'_>,
            net: NetId,
            out: &mut Netlist,
            net_map: &mut HashMap<NetId, NetId>,
            tie_map: &mut HashMap<bool, NetId>,
            emitted: &mut HashMap<CellId, NetId>,
            choices: &HashMap<CellId, Choice>,
            witnesses: &mut Vec<(CellId, Vec<usize>, Vec<TruthTable>)>,
        ) -> NetId {
            if let Some(&m) = net_map.get(&net) {
                return m;
            }
            if let Some(&v) = eng.const_nets.get(&net) {
                if let Some(&t) = tie_map.get(&v) {
                    net_map.insert(net, t);
                    return t;
                }
                let kind = if v {
                    mvf_cells::CellKind::Tie1
                } else {
                    mvf_cells::CellKind::Tie0
                };
                let id = eng.lib.cell_by_kind(kind).expect("tie cells in library");
                let (_, t) = out.add_cell(format!("tie{}", v as u8), CellRef::Std(id), vec![]);
                tie_map.insert(v, t);
                net_map.insert(net, t);
                return t;
            }
            let driver = eng
                .nl
                .driver(net)
                .expect("net without driver reached during emission");
            if let Some(&t) = emitted.get(&driver) {
                net_map.insert(net, t);
                return t;
            }
            let choice = &choices[&driver];
            let mut mapped_leaves = Vec::with_capacity(choice.leaves.len());
            for &leaf in &choice.leaves {
                mapped_leaves.push(emit_net(
                    eng, leaf, out, net_map, tie_map, emitted, choices, witnesses,
                ));
            }
            // Pin order: leaf v goes to pin pin_perm[v].
            let n_pins = match choice.cell {
                CellRef::Std(id) => eng.lib.cell(id).n_inputs(),
                CellRef::Camo(id) => eng.camo.expect("camo library present").cell(id).n_inputs(),
            };
            let mut pins = vec![NetId(u32::MAX); n_pins];
            for (v, &leaf) in mapped_leaves.iter().enumerate() {
                pins[choice.pin_perm[v]] = leaf;
            }
            // Unused pins (possible only for the camouflaged-constant
            // trick) are tied to the first mapped leaf or, failing that,
            // the lowest already-emitted net — a deterministic choice, so
            // repeated runs emit identical netlists.
            let filler = mapped_leaves.first().copied().unwrap_or_else(|| {
                net_map
                    .values()
                    .copied()
                    .min_by_key(|n| n.0)
                    .expect("at least one net")
            });
            for p in pins.iter_mut() {
                if p.0 == u32::MAX {
                    *p = filler;
                }
            }
            let inst_name = format!("m{}", out.n_cells());
            let (cid, mapped_out) = out.add_cell(inst_name, choice.cell, pins);
            if matches!(choice.cell, CellRef::Camo(_)) {
                let select_ids: Vec<usize> = choice
                    .select_leaves
                    .iter()
                    .map(|n| eng.select_nets[n])
                    .collect();
                witnesses.push((cid, select_ids, choice.funcs_by_assign.clone()));
            }
            emitted.insert(driver, mapped_out);
            net_map.insert(net, mapped_out);
            mapped_out
        }

        for (po_name, po_net) in self.nl.outputs() {
            let mapped = emit_net(
                self,
                *po_net,
                &mut out,
                &mut net_map,
                &mut tie_map,
                &mut emitted,
                choices,
                &mut witnesses,
            );
            out.add_output(po_name.clone(), mapped);
        }
        (out, witnesses)
    }
}

/// Composes `f(pins)` with the pin functions: substitutes `pin_tts[i]` for
/// variable `i` of `f`.
pub(crate) fn compose(f: &TruthTable, pin_tts: &[TruthTable], n_vars: usize) -> TruthTable {
    // Shannon-style substitution: iterate over f's minterms.
    let mut acc = TruthTable::zero(n_vars);
    for m in 0..f.n_minterms() {
        if !f.get(m) {
            continue;
        }
        let mut term = TruthTable::one(n_vars);
        for (i, t) in pin_tts.iter().enumerate() {
            term = if m & (1 << i) != 0 {
                term.and(t)
            } else {
                term.and(&t.not())
            };
        }
        acc = acc.or(&term);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_substitutes_correctly() {
        // f = AND2(x0, x1); pins = (a ∨ b, ¬c) over 3 vars.
        let f = mvf_cells::CellKind::And(2).function();
        let a = TruthTable::var(0, 3);
        let b = TruthTable::var(1, 3);
        let c = TruthTable::var(2, 3);
        let got = compose(&f, &[a.or(&b), c.not()], 3);
        assert_eq!(got, a.or(&b).and(&c.not()));
    }

    #[test]
    fn compose_handles_inverter() {
        let f = mvf_cells::CellKind::Inv.function();
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let got = compose(&f, &[a.xor(&b)], 2);
        assert_eq!(got, a.xor(&b).not());
    }

    #[test]
    fn compose_constant_cell() {
        let f = mvf_cells::CellKind::Tie1.function();
        let got = compose(&f, &[], 2);
        assert!(got.is_one());
    }
}
