//! Ordinary (non-camouflaged) tree-covering technology mapping.
//!
//! Maps an AND2/INV subject netlist onto the full standard library to
//! minimize GE area. This is the area oracle of Phase II: the paper uses
//! the area ABC reports after mapping as the genetic algorithm's fitness.

use mvf_cells::Library;
use mvf_logic::npn::all_permutations;
use mvf_logic::TruthTable;
use mvf_netlist::{CellRef, Netlist};

use crate::engine::{Engine, EngineScratch, MapError, Match, Subtree};

/// Reusable matcher state for [`map_standard_with`].
///
/// Holds the pin-permutation tables per arity (computed once instead of
/// once per subtree × cell), a buffer of permuted subtree functions
/// (computed once per subtree instead of once per cell), and the covering
/// engine's `EngineScratch` (flat leaf-set arena and `TtArena`-backed
/// cone evaluation). Sharing one `MatchScratch` across many mapping calls
/// — the Phase-II fitness loop — removes the dominant transient
/// allocations of the mapper without changing any mapping decision.
#[derive(Debug, Default)]
pub struct MatchScratch {
    /// `perms[k]` = all permutations of `0..k`, in [`all_permutations`]
    /// order; filled lazily per arity.
    pub(crate) perms: Vec<Option<Vec<Vec<usize>>>>,
    /// Permuted variants of the current subtree function, parallel to
    /// `perms[k]`.
    pub(crate) permuted: Vec<TruthTable>,
    /// The covering engine's enumeration and cone-evaluation arenas.
    pub(crate) engine: EngineScratch,
}

/// Lazily fills and returns the permutation table for arity `k`. A free
/// function (not a method) so callers can hold disjoint borrows of the
/// other `MatchScratch` fields at the same time.
pub(crate) fn perms_for(perms: &mut Vec<Option<Vec<Vec<usize>>>>, k: usize) -> &[Vec<usize>] {
    if perms.len() <= k {
        perms.resize(k + 1, None);
    }
    perms[k]
        .get_or_insert_with(|| all_permutations(k))
        .as_slice()
}

/// Options for [`map_standard`].
#[derive(Debug, Clone)]
pub struct MapOptions {
    /// Maximum subtree depth in subject cells (AND2/INV granularity).
    pub max_depth: usize,
    /// Maximum data leaves per subtree (bounded by the widest cell).
    pub max_leaves: usize,
}

impl Default for MapOptions {
    fn default() -> Self {
        // Depth 5 lets an OR4 (inverter fringe + AND tree + inverter) be
        // recognized from AND2/INV granularity; 4 leaves matches the
        // widest library cells.
        MapOptions {
            max_depth: 5,
            max_leaves: 4,
        }
    }
}

/// Maps the subject netlist onto the standard library, minimizing area.
///
/// # Errors
///
/// Returns [`MapError::NoMatch`] if some cone cannot be covered (cannot
/// happen with the standard library, which contains AND2 and INV) and
/// [`MapError::BadSubject`] if the netlist is malformed.
///
/// # Example
///
/// ```
/// use mvf_aig::Aig;
/// use mvf_cells::Library;
/// use mvf_netlist::subject_graph;
/// use mvf_techmap::{map_standard, MapOptions};
///
/// let mut aig = Aig::new(2);
/// let (a, b) = (aig.input(0), aig.input(1));
/// let f = aig.and(a, b);
/// aig.add_output("y", !f);
/// let lib = Library::standard();
/// let subject = subject_graph::from_aig(&aig, &lib);
/// let mapped = map_standard(&subject, &lib, &MapOptions::default())?;
/// // ¬(a·b) maps to a single NAND2 of 1.0 GE.
/// assert_eq!(mapped.area_ge(&lib, None), 1.0);
/// # Ok::<(), mvf_techmap::MapError>(())
/// ```
pub fn map_standard(
    subject: &Netlist,
    lib: &Library,
    options: &MapOptions,
) -> Result<Netlist, MapError> {
    map_standard_with(subject, lib, options, &mut MatchScratch::default())
}

/// [`map_standard`] with a caller-owned [`MatchScratch`]: identical
/// mapping decisions, but permutation tables and permuted-function
/// buffers are reused across calls.
///
/// # Errors
///
/// Same as [`map_standard`].
pub fn map_standard_with(
    subject: &Netlist,
    lib: &Library,
    options: &MapOptions,
    scratch: &mut MatchScratch,
) -> Result<Netlist, MapError> {
    let engine = Engine::new(
        subject,
        lib,
        None,
        &[],
        options.max_depth,
        options.max_leaves,
        0,
    )?;
    // Disjoint scratch borrows: the matcher closure owns the permutation
    // tables and buffers, the covering engine owns its arenas.
    let MatchScratch {
        perms,
        permuted,
        engine: engine_scratch,
    } = scratch;
    let matcher = |st: &Subtree| -> Option<Match> {
        debug_assert_eq!(st.funcs_by_assign.len(), 1, "plain mapping has no selects");
        let f = &st.funcs_by_assign[0];
        let k = st.data_leaves.len();
        // Permute the subtree function once per permutation, not once per
        // permutation × cell.
        let perms = perms_for(perms, k);
        permuted.clear();
        for perm in perms {
            permuted.push(f.permute(perm).expect("valid permutation"));
        }
        let mut best: Option<Match> = None;
        for (id, cell) in lib.iter() {
            if cell.n_inputs() != k {
                continue;
            }
            if best.as_ref().is_some_and(|b| b.area <= cell.area_ge()) {
                continue;
            }
            for (perm, g) in perms.iter().zip(permuted.iter()) {
                if g == cell.function() {
                    best = Some(Match {
                        cell: CellRef::Std(id),
                        pin_perm: perm.clone(),
                        funcs_by_assign: vec![g.clone()],
                        area: cell.area_ge(),
                        override_leaves: None,
                    });
                    break;
                }
            }
        }
        best
    };
    let (choices, _) = engine.cover(matcher, engine_scratch)?;
    let (mapped, _) = engine.emit(&choices, false, &format!("{}_mapped", subject.name()));
    Ok(mapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvf_aig::Aig;
    use mvf_netlist::subject_graph;

    fn map_aig(aig: &Aig) -> (Netlist, Library) {
        let lib = Library::standard();
        let subject = subject_graph::from_aig(aig, &lib);
        let mapped = map_standard(&subject, &lib, &MapOptions::default()).expect("mappable");
        mapped.check(&lib).expect("mapped netlist is well-formed");
        (mapped, lib)
    }

    #[test]
    fn nand_maps_to_single_cell() {
        let mut aig = Aig::new(2);
        let (a, b) = (aig.input(0), aig.input(1));
        let f = aig.and(a, b);
        aig.add_output("y", !f);
        let (mapped, lib) = map_aig(&aig);
        assert_eq!(mapped.n_cells(), 1);
        assert_eq!(mapped.area_ge(&lib, None), 1.0);
        assert_eq!(
            mapped.cell_histogram(&lib, None),
            vec![("NAND2".to_string(), 1)]
        );
    }

    #[test]
    fn wide_gates_are_recognized() {
        // ¬(a+b+c+d) = NOR4 built from AND2/INV primitives.
        let mut aig = Aig::new(4);
        let lits: Vec<_> = (0..4).map(|i| aig.input(i)).collect();
        let f = aig.or_many(&lits);
        aig.add_output("y", !f);
        let (mapped, lib) = map_aig(&aig);
        assert_eq!(
            mapped.cell_histogram(&lib, None),
            vec![("NOR4".to_string(), 1)],
            "expected a single NOR4"
        );
    }

    #[test]
    fn and4_cheaper_than_three_and2() {
        let mut aig = Aig::new(4);
        let lits: Vec<_> = (0..4).map(|i| aig.input(i)).collect();
        let f = aig.and_many(&lits);
        aig.add_output("y", f);
        let (mapped, lib) = map_aig(&aig);
        assert_eq!(
            mapped.area_ge(&lib, None),
            2.0,
            "AND4 = 2.0 GE beats 3 AND2"
        );
    }

    #[test]
    fn xor_maps_functionally_correctly() {
        let mut aig = Aig::new(2);
        let (a, b) = (aig.input(0), aig.input(1));
        let f = aig.xor(a, b);
        aig.add_output("y", f);
        let (mapped, lib) = map_aig(&aig);
        // No XOR cell in the library: expect a small gate network, and
        // verify the function by evaluating the mapped netlist.
        let f = eval_output(&mapped, &lib);
        for m in 0..4usize {
            assert_eq!(f.get(m), (m & 1 == 1) ^ (m & 2 == 2));
        }
    }

    #[test]
    fn shared_nodes_stay_shared() {
        // (a·b)·c and (a·b)·d: a·b is a tree root used twice.
        let mut aig = Aig::new(4);
        let (a, b, c, d) = (aig.input(0), aig.input(1), aig.input(2), aig.input(3));
        let ab = aig.and(a, b);
        let x = aig.and(ab, c);
        let y = aig.and(ab, d);
        aig.add_output("x", x);
        aig.add_output("y", y);
        let (mapped, lib) = map_aig(&aig);
        let hist = mapped.cell_histogram(&lib, None);
        assert_eq!(hist, vec![("AND2".to_string(), 3)], "{hist:?}");
    }

    #[test]
    fn warm_scratch_reuse_matches_cold_calls() {
        // The engine scratch (flat leaf pools, cone arena) must never
        // change a mapping decision: identical netlists, identical areas,
        // across repeated warm calls and against a cold call.
        let mut aig = Aig::new(4);
        let lits: Vec<_> = (0..4).map(|i| aig.input(i)).collect();
        let ab = aig.or(lits[0], lits[1]);
        let cd = aig.xor(lits[2], lits[3]);
        let f = aig.and(ab, cd);
        aig.add_output("y", !f);
        let lib = Library::standard();
        let subject = subject_graph::from_aig(&aig, &lib);
        let cold = map_standard(&subject, &lib, &MapOptions::default()).expect("mappable");
        let mut scratch = MatchScratch::default();
        for round in 0..3 {
            let warm = map_standard_with(&subject, &lib, &MapOptions::default(), &mut scratch)
                .expect("mappable");
            assert_eq!(
                warm.area_ge(&lib, None),
                cold.area_ge(&lib, None),
                "round {round}"
            );
            assert_eq!(
                warm.cell_histogram(&lib, None),
                cold.cell_histogram(&lib, None),
                "round {round}"
            );
        }
    }

    #[test]
    fn constant_and_passthrough_outputs() {
        let mut aig = Aig::new(1);
        let a = aig.input(0);
        aig.add_output("t", mvf_aig::Lit::TRUE);
        aig.add_output("w", a);
        let (mapped, lib) = map_aig(&aig);
        let hist = mapped.cell_histogram(&lib, None);
        assert!(hist.iter().any(|(n, _)| n == "TIE1"));
        assert!(hist.iter().any(|(n, _)| n == "BUF"));
    }

    /// Helper: evaluate the first output of a std-cell netlist.
    fn eval_output(nl: &Netlist, lib: &Library) -> mvf_logic::TruthTable {
        use std::collections::HashMap;
        let n = nl.inputs().len();
        let mut env: HashMap<mvf_netlist::NetId, mvf_logic::TruthTable> = HashMap::new();
        for (i, &pi) in nl.inputs().iter().enumerate() {
            env.insert(pi, mvf_logic::TruthTable::var(i, n));
        }
        for cid in nl.topo_cells() {
            let c = nl.cell(cid);
            let pin_tts: Vec<_> = c.inputs.iter().map(|p| env[p].clone()).collect();
            let f = match c.cell {
                CellRef::Std(id) => lib.cell(id).function().clone(),
                CellRef::Camo(_) => unreachable!("plain mapping emits std cells"),
            };
            env.insert(c.output, crate::engine::compose(&f, &pin_tts, n));
        }
        env[&nl.outputs()[0].1].clone()
    }
}
