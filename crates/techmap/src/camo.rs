//! Camouflage technology mapping — the paper's Algorithm 1.
//!
//! The subject netlist is the synthesized merged circuit, whose select
//! inputs choose among the viable functions. Tree covering proceeds as in
//! ordinary mapping, except that a subtree containing select leaves is
//! characterized by `ABSFUNC` — the set of functions it takes over its
//! data leaves under every select assignment — and may be mapped onto a
//! camouflaged cell `g` only if `plausiblefunctions(g) ⊇ F(ts)` under a
//! single pin assignment (Alg. 1 line 8). The mapped circuit has **no
//! select inputs**: they are absorbed into the doping freedom of the
//! camouflaged cells, so all viable functions remain plausible to the
//! imaging adversary.

use mvf_cells::{CamoLibrary, CellKind, Library};
use mvf_logic::TruthTable;
use mvf_netlist::{CellId, CellRef, Netlist};

use crate::engine::{Engine, MapError, Match, Subtree};
use crate::plain::{perms_for, MatchScratch};

/// Reusable matcher state for [`map_camouflage_with`], mirroring
/// [`MatchScratch`] for the camouflage matcher.
///
/// Holds the lazily-filled pin-permutation tables per arity and the
/// permuted-function buffer (shared [`MatchScratch`] shape), plus the
/// deduplicated required-function candidate buffer that is otherwise
/// allocated once per candidate subtree. Sharing one `CamoMatchScratch`
/// across many mapping calls — the Phase-III path of a fitness or
/// validation loop (see `mvf::EvalContext`) — removes the matcher's
/// dominant transient allocations without changing any mapping decision.
#[derive(Debug, Default)]
pub struct CamoMatchScratch {
    matcher: MatchScratch,
    /// Deduplicated requirement set of the current subtree.
    required: Vec<TruthTable>,
}

/// Options for [`map_camouflage`].
#[derive(Debug, Clone)]
pub struct CamoMapOptions {
    /// Maximum subtree depth in subject cells (AND2/INV granularity).
    /// The paper's Alg. 1 bounds candidate subtrees to depth < 3 over a
    /// ≤4-input-gate netlist; over the finer AND2/INV subject graph the
    /// equivalent horizon is deeper.
    pub max_depth: usize,
    /// Maximum data leaves per subtree.
    pub max_leaves: usize,
    /// Maximum select leaves abstracted per subtree (bounds the 2^s
    /// ABSFUNC enumeration).
    pub max_selects: usize,
    /// Allow plain standard cells for subtrees whose function set is a
    /// singleton (no select dependence). Keeps area down and is sound:
    /// the covering condition still holds.
    pub allow_standard_cells: bool,
}

impl Default for CamoMapOptions {
    fn default() -> Self {
        CamoMapOptions {
            max_depth: 5,
            max_leaves: 4,
            max_selects: 8,
            allow_standard_cells: true,
        }
    }
}

/// Per-instance doping witness: which function the cell realizes for each
/// assignment of its select inputs.
#[derive(Debug, Clone)]
pub struct CellWitness {
    /// The camouflaged instance in the mapped netlist.
    pub cell: CellId,
    /// Select numbers (bit positions of the select value) this cell's
    /// cone depended on.
    pub select_ids: Vec<usize>,
    /// Pin-space function per local select assignment (`2^select_ids.len()`
    /// entries): entry `a` is the function required when select
    /// `select_ids[j]` takes bit `j` of `a`.
    pub funcs_by_assign: Vec<TruthTable>,
}

impl CellWitness {
    /// The function the cell must be doped to under a *global* select
    /// value (bit `i` of `global` = select number `i`).
    pub fn function_for(&self, global: usize) -> &TruthTable {
        let mut local = 0usize;
        for (j, &sid) in self.select_ids.iter().enumerate() {
            if global & (1 << sid) != 0 {
                local |= 1 << j;
            }
        }
        &self.funcs_by_assign[local]
    }
}

/// The doping witnesses of a camouflage-mapped circuit.
#[derive(Debug, Clone, Default)]
pub struct CamoWitness {
    /// One entry per camouflaged instance.
    pub cells: Vec<CellWitness>,
}

/// A camouflage-mapped circuit: the netlist (select-free), its witness,
/// and bookkeeping for validation.
#[derive(Debug, Clone)]
pub struct CamoMappedCircuit {
    /// The mapped netlist over camouflaged (and standard) cells.
    pub netlist: Netlist,
    /// Doping witnesses for every camouflaged instance.
    pub witness: CamoWitness,
}

/// Runs Algorithm 1: covers the subject netlist with camouflaged cells so
/// that every select assignment's circuit function remains realizable
/// (hence plausible), eliminating the select inputs.
///
/// `select_inputs` are the indices (into `subject.inputs()`) of the select
/// nets.
///
/// # Errors
///
/// Returns [`MapError::NoMatch`] if some cone cannot be covered — with the
/// standard camouflaged library this indicates an over-constrained subtree
/// bound, not a fundamental failure — and [`MapError::BadSubject`] for
/// malformed subjects.
pub fn map_camouflage(
    subject: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    select_inputs: &[usize],
    options: &CamoMapOptions,
) -> Result<CamoMappedCircuit, MapError> {
    map_camouflage_with(
        subject,
        lib,
        camo,
        select_inputs,
        options,
        &mut CamoMatchScratch::default(),
    )
}

/// [`map_camouflage`] with a caller-owned [`CamoMatchScratch`]: identical
/// mapping decisions, but the pin-permutation tables and candidate
/// buffers are reused across calls — the Phase-III analogue of
/// [`crate::map_standard_with`].
///
/// # Errors
///
/// Same as [`map_camouflage`].
pub fn map_camouflage_with(
    subject: &Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    select_inputs: &[usize],
    options: &CamoMapOptions,
    scratch: &mut CamoMatchScratch,
) -> Result<CamoMappedCircuit, MapError> {
    let engine = Engine::new(
        subject,
        lib,
        Some(camo),
        select_inputs,
        options.max_depth,
        options.max_leaves,
        options.max_selects,
    )?;
    let dummy_net = subject
        .inputs()
        .iter()
        .copied()
        .find(|n| !select_inputs.contains(&subject.input_index(*n).expect("input")))
        .unwrap_or_else(|| subject.inputs()[0]);

    // Disjoint scratch borrows: the matcher closure owns the permutation
    // tables and candidate buffers, the covering engine owns its arenas.
    let CamoMatchScratch {
        matcher:
            MatchScratch {
                perms,
                permuted,
                engine: engine_scratch,
            },
        required,
    } = scratch;
    let matcher = |st: &Subtree| -> Option<Match> {
        let k = st.data_leaves.len();
        // Deduplicated requirement set (the per-assignment list can repeat
        // functions), built in the reused candidate buffer.
        required.clear();
        for f in &st.funcs_by_assign {
            if !required.contains(f) {
                required.push(f.clone());
            }
        }
        let required = &*required;
        let mut best: Option<Match> = None;

        // Constant cones (no data leaves).
        if k == 0 {
            if required.len() == 1 {
                // Fixed constant: a tie cell.
                let kind = if required[0].is_one() {
                    CellKind::Tie1
                } else {
                    CellKind::Tie0
                };
                let id = lib.cell_by_kind(kind).expect("tie cells present");
                return Some(Match {
                    cell: CellRef::Std(id),
                    pin_perm: vec![],
                    funcs_by_assign: st.funcs_by_assign.clone(),
                    area: lib.cell(id).area_ge(),
                    override_leaves: Some(vec![]),
                });
            }
            // Select-dependent constant {0, 1}: a camouflaged inverter fed
            // by any net realizes either constant by doping.
            let inv = camo
                .cell_by_name("INV")
                .expect("camouflaged inverter present");
            let (inv_id, _) = camo
                .iter()
                .find(|(_, c)| c.name() == "INV")
                .expect("camouflaged inverter present");
            let funcs: Vec<TruthTable> = st
                .funcs_by_assign
                .iter()
                .map(|f| TruthTable::constant(1, f.is_one()))
                .collect();
            return Some(Match {
                cell: CellRef::Camo(inv_id),
                pin_perm: vec![0],
                funcs_by_assign: funcs,
                area: inv.area_ge(),
                override_leaves: Some(vec![dummy_net]),
            });
        }

        // The pin-permutation table for this arity, computed once and
        // shared by the standard-cell scan and every camouflaged cover
        // test below.
        let perms = perms_for(perms, k);

        // Standard cells for select-independent subtrees. The subtree
        // function is permuted once per permutation (into the reused
        // buffer), not once per permutation × cell.
        if options.allow_standard_cells && required.len() == 1 {
            let f = &required[0];
            permuted.clear();
            for perm in perms {
                permuted.push(f.permute(perm).expect("valid permutation"));
            }
            for (id, cell) in lib.iter() {
                if cell.n_inputs() != k {
                    continue;
                }
                if best.as_ref().is_some_and(|b| b.area <= cell.area_ge()) {
                    continue;
                }
                for (perm, g) in perms.iter().zip(permuted.iter()) {
                    if g == cell.function() {
                        best = Some(Match {
                            cell: CellRef::Std(id),
                            pin_perm: perm.clone(),
                            funcs_by_assign: vec![g.clone()],
                            area: cell.area_ge(),
                            override_leaves: None,
                        });
                        break;
                    }
                }
            }
        }

        // Camouflaged cells: plausible-set containment (Alg. 1 line 8).
        for (id, cell) in camo.cells_with_arity(k) {
            if best.as_ref().is_some_and(|b| b.area <= cell.area_ge()) {
                continue;
            }
            if let Some(perm) = cell.covers_with(perms, required) {
                let funcs: Vec<TruthTable> = st
                    .funcs_by_assign
                    .iter()
                    .map(|f| f.permute(&perm).expect("valid permutation"))
                    .collect();
                best = Some(Match {
                    cell: CellRef::Camo(id),
                    pin_perm: perm,
                    funcs_by_assign: funcs,
                    area: cell.area_ge(),
                    override_leaves: None,
                });
            }
        }
        best
    };

    let (choices, _) = engine.cover(matcher, engine_scratch)?;
    let (netlist, raw_witnesses) = engine.emit(&choices, true, &format!("{}_camo", subject.name()));
    let witness = CamoWitness {
        cells: raw_witnesses
            .into_iter()
            .map(|(cell, select_ids, funcs_by_assign)| CellWitness {
                cell,
                select_ids,
                funcs_by_assign,
            })
            .collect(),
    };
    Ok(CamoMappedCircuit { netlist, witness })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvf_aig::Aig;
    use mvf_netlist::subject_graph;

    /// Builds the classic target: a mux between two functions of (a, b),
    /// select as input 2.
    fn mux_subject() -> (Netlist, Library, CamoLibrary) {
        let mut aig = Aig::new(3);
        let a = aig.input(0);
        let b = aig.input(1);
        let s = aig.input(2);
        aig.set_input_name(2, "sel0");
        let f0 = aig.and(a, b);
        let f1 = aig.or(a, b);
        let y = aig.mux(s, f1, f0);
        aig.add_output("y", y);
        let lib = Library::standard();
        let subject = subject_graph::from_aig(&aig, &lib);
        let camo = CamoLibrary::from_library(&lib);
        (subject, lib, camo)
    }

    #[test]
    fn eliminates_select_inputs() {
        let (subject, lib, camo) = mux_subject();
        let mapped = map_camouflage(&subject, &lib, &camo, &[2], &CamoMapOptions::default())
            .expect("mappable");
        assert_eq!(
            mapped.netlist.inputs().len(),
            2,
            "select input must be eliminated"
        );
        mapped
            .netlist
            .check_with_camo(&lib, Some(&camo))
            .expect("well-formed");
        assert!(
            !mapped.witness.cells.is_empty(),
            "at least one camouflaged cell is required to absorb the select"
        );
    }

    #[test]
    fn witness_functions_are_plausible() {
        let (subject, lib, camo) = mux_subject();
        let mapped = map_camouflage(&subject, &lib, &camo, &[2], &CamoMapOptions::default())
            .expect("mappable");
        for w in &mapped.witness.cells {
            let inst = mapped.netlist.cell(w.cell);
            let CellRef::Camo(id) = inst.cell else {
                panic!("witness for non-camouflaged cell")
            };
            let cell = camo.cell(id);
            for f in &w.funcs_by_assign {
                assert!(
                    cell.is_plausible(f),
                    "required function {f:?} not plausible for {}",
                    cell.name()
                );
                assert!(cell.config_for(f).is_some(), "no doping config for {f:?}");
            }
        }
    }

    #[test]
    fn camo_mapping_is_smaller_than_keeping_selects() {
        let (subject, lib, camo) = mux_subject();
        let plain =
            crate::map_standard(&subject, &lib, &crate::MapOptions::default()).expect("mappable");
        let mapped = map_camouflage(&subject, &lib, &camo, &[2], &CamoMapOptions::default())
            .expect("mappable");
        assert!(
            mapped.netlist.area_ge(&lib, Some(&camo)) < plain.area_ge(&lib, None),
            "camouflage mapping should absorb the mux: {} vs {}",
            mapped.netlist.area_ge(&lib, Some(&camo)),
            plain.area_ge(&lib, None)
        );
    }

    #[test]
    fn witness_function_for_global_assignment() {
        let w = CellWitness {
            cell: CellId(0),
            select_ids: vec![2, 0],
            funcs_by_assign: (0..4)
                .map(|a| TruthTable::constant(1, a % 2 == 1))
                .collect(),
        };
        // Global bit 2 -> local bit 0; global bit 0 -> local bit 1.
        assert!(w.function_for(0b100).is_one()); // local a = 0b01
        assert!(!w.function_for(0b001).is_one()); // local a = 0b10
    }

    #[test]
    fn select_only_constant_cone() {
        // Output = ¬sel: a select-dependent constant {1, 0} must map to a
        // camouflaged inverter with no select inputs left.
        let mut aig = Aig::new(2);
        let s = aig.input(1);
        let a = aig.input(0);
        let f = aig.and(a, s); // keep a data path too
        aig.add_output("y", f);
        aig.add_output("nsel", !s);
        let lib = Library::standard();
        let subject = subject_graph::from_aig(&aig, &lib);
        let camo = CamoLibrary::from_library(&lib);
        let mapped = map_camouflage(&subject, &lib, &camo, &[1], &CamoMapOptions::default())
            .expect("mappable");
        assert_eq!(mapped.netlist.inputs().len(), 1);
        mapped
            .netlist
            .check_with_camo(&lib, Some(&camo))
            .expect("well-formed");
    }
}
