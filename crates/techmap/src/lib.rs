//! Tree-covering technology mapping, plain and camouflaged.
//!
//! Two mappers share one dynamic-programming engine (Keutzer's DAGON
//! approach: split the subject graph into fanout-free trees, cover each
//! tree bottom-up with minimum-area cell choices):
//!
//! * [`map_standard`] — ordinary mapping onto the standard library. A
//!   subtree may be covered by a cell iff the cell's function equals the
//!   subtree's function under some pin permutation. The resulting GE area
//!   is the "synthesized area" used as the Phase-II fitness (the paper
//!   reads it off ABC).
//! * [`map_camouflage`] — the paper's **Algorithm 1**. Select inputs are
//!   abstracted away (`ABSFUNC`): a subtree containing select leaves is
//!   characterized by the *set* of functions it takes over its data leaves
//!   under every select assignment, and may be covered by a camouflaged
//!   cell iff the cell's plausible set contains that whole set under one
//!   pin assignment. Select inputs are thereby eliminated from the mapped
//!   circuit while every viable function stays plausible.
//!
//! The camouflage mapper records a [`CamoWitness`]: for every camouflaged
//! instance, the function it must be doped to for each select assignment.
//! [`mvf_sim`](https://docs.rs) uses it to validate that the mapped circuit
//! can realize every viable function (the paper's ModelSim check).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod camo;
mod engine;
mod plain;

pub use camo::{
    map_camouflage, map_camouflage_with, CamoMapOptions, CamoMappedCircuit, CamoMatchScratch,
    CamoWitness, CellWitness,
};
pub use engine::MapError;
pub use plain::{map_standard, map_standard_with, MapOptions, MatchScratch};
