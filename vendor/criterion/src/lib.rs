//! A vendored, dependency-free subset of the `criterion` API.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so the benchmark harness surface the `crates/bench` targets use is
//! reimplemented here: [`Criterion::bench_function`], benchmark groups
//! with [`BenchmarkGroup::sample_size`], [`Bencher::iter`], [`black_box`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Timing is a simple adaptive loop (warm-up, then batches until a wall
//! budget is spent) reporting the mean time per iteration. It is not a
//! statistical replacement for real criterion, but produces comparable
//! relative numbers and keeps `cargo bench` runnable offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement settings shared by a [`Criterion`] instance or group.
#[derive(Debug, Clone)]
struct Settings {
    /// Number of timed batches ("samples" in criterion terms).
    sample_size: usize,
    /// Wall-clock budget per benchmark.
    budget: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            budget: Duration::from_millis(500),
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), &self.settings, &mut f);
        self
    }

    /// Opens a named group of benchmarks with shared settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings: Settings::default(),
        }
    }
}

/// A group of related benchmarks, as returned by
/// [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, &self.settings, &mut f);
        self
    }

    /// Finishes the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    /// Times `f`, storing the mean per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-iteration cost estimate.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        // Aim for `sample_size` batches inside the budget.
        let per_batch =
            (self.budget.as_nanos() / self.sample_size.max(1) as u128).max(once.as_nanos());
        let batch_iters = (per_batch / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch_iters {
                black_box(f());
            }
            total += t.elapsed();
            iters += batch_iters;
            if total >= self.budget {
                break;
            }
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
        self.iters = iters;
    }
}

fn run_one(name: &str, settings: &Settings, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size: settings.sample_size,
        budget: settings.budget,
        ..Bencher::default()
    };
    f(&mut b);
    println!(
        "{:<48} time: {:>12} ({} iterations)",
        name,
        fmt_ns(b.mean_ns),
        b.iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_apply_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut ran = false;
        g.bench_function("inner", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}
