//! A vendored, dependency-free subset of the `rand` crate API.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so the few pieces of `rand` the GA engine needs are reimplemented here:
//! [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64), the
//! [`SeedableRng`] constructor, and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is fully deterministic and platform-independent for a
//! given seed, which is the property the workspace actually relies on
//! (reproducible GA runs); statistical quality matches xoshiro256++.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform 64-bit generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Seeds the full generator state from a single `u64` via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The generator's full internal state, for checkpointing: a
        /// generator rebuilt with [`StdRng::from_state`] continues the
        /// exact same output stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot.
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which xoshiro256++ cannot leave
        /// (and [`SeedableRng::seed_from_u64`] never produces).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s != [0, 0, 0, 0], "xoshiro256++ state must be non-zero");
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reachable");
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(0xFACE);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
