//! Cross-crate determinism: running the full flow with parallel GA
//! fitness evaluation must be **bit-identical** to the serial run for a
//! fixed seed — same `GenStats` history, same winning pin assignment,
//! same areas. This is the contract that makes the `parallel` feature
//! safe to enable unconditionally.

use mvf::{Flow, FlowResult};
use mvf_ga::GaConfig;
use mvf_sboxes::optimal_sboxes;

fn run_present2(threads: usize) -> FlowResult {
    let functions = optimal_sboxes()[..2].to_vec();
    Flow::builder()
        .ga(GaConfig {
            population: 6,
            generations: 2,
            seed: 0xBEEF,
            threads,
            ..GaConfig::default()
        })
        .build()
        .run(&functions)
        .expect("flow succeeds")
}

#[test]
fn parallel_flow_is_bit_identical_to_serial() {
    let serial = run_present2(1);
    for threads in [2, 4] {
        let parallel = run_present2(threads);
        assert_eq!(
            parallel.assignment, serial.assignment,
            "threads={threads}: best genome diverged"
        );
        assert_eq!(
            parallel.evaluations, serial.evaluations,
            "threads={threads}"
        );
        assert_eq!(
            parallel.synthesized_area_ge.to_bits(),
            serial.synthesized_area_ge.to_bits(),
            "threads={threads}"
        );
        assert_eq!(
            parallel.mapped_area_ge.to_bits(),
            serial.mapped_area_ge.to_bits(),
            "threads={threads}"
        );
        assert_eq!(parallel.ga_history.len(), serial.ga_history.len());
        for (g, (a, b)) in parallel
            .ga_history
            .iter()
            .zip(&serial.ga_history)
            .enumerate()
        {
            assert_eq!(
                a.best_so_far.to_bits(),
                b.best_so_far.to_bits(),
                "threads={threads} gen={g}"
            );
            assert_eq!(
                a.best.to_bits(),
                b.best.to_bits(),
                "threads={threads} gen={g}"
            );
            assert_eq!(
                a.avg.to_bits(),
                b.avg.to_bits(),
                "threads={threads} gen={g}"
            );
        }
    }
}

#[test]
fn random_baseline_is_deterministic_across_repeats() {
    let functions = optimal_sboxes()[..2].to_vec();
    let flow = Flow::builder().build();
    let a = flow.random_baseline(&functions, 4, 0xF00D);
    let b = flow.random_baseline(&functions, 4, 0xF00D);
    assert_eq!(a.best_assignment, b.best_assignment);
    assert_eq!(a.samples.len(), b.samples.len());
    for (x, y) in a.samples.iter().zip(&b.samples) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}
