//! Integration test E6: the end-to-end flow produces circuits that
//! (a) eliminate the select inputs, (b) can realize every viable function
//! (the paper's ModelSim check, done exhaustively here), and (c) remain
//! plausible for every viable function under the SAT adversary.

use mvf::{Flow, Ga};
use mvf_ga::GaConfig;
use mvf_sboxes::{des_sboxes, optimal_sboxes};

fn tiny_flow() -> Flow<Ga> {
    Flow::builder()
        .ga(GaConfig {
            population: 6,
            generations: 2,
            seed: 42,
            ..GaConfig::default()
        })
        .build()
}

#[test]
fn present_two_sboxes_full_flow() {
    let functions = optimal_sboxes()[..2].to_vec();
    let flow = tiny_flow();
    let result = flow.run(&functions).expect("flow succeeds");
    // Select inputs eliminated: 4 data inputs remain.
    assert_eq!(result.mapped.netlist.inputs().len(), 4);
    // Validation is run inside the flow; run it again explicitly.
    mvf_sim::validate_mapped(
        &result.mapped,
        flow.library(),
        flow.camo_library(),
        &result.merged.functions,
    )
    .expect("all viable functions realizable");
    // TM never increases area over the plain mapping.
    assert!(result.mapped_area_ge <= result.synthesized_area_ge);
    // Every fitness evaluation of a healthy run succeeds.
    assert_eq!(result.failed_evaluations, 0);
}

#[test]
fn present_four_sboxes_adversary_check() {
    let functions = optimal_sboxes()[..4].to_vec();
    let flow = tiny_flow();
    let result = flow.run(&functions).expect("flow succeeds");
    for (j, f) in result.merged.functions.iter().enumerate() {
        assert!(
            mvf_attack::is_plausible(
                &result.mapped.netlist,
                flow.library(),
                flow.camo_library(),
                f
            ),
            "viable function {j} must stay plausible to the SAT adversary"
        );
    }
}

#[test]
fn des_two_sboxes_full_flow() {
    let functions = des_sboxes()[..2].to_vec();
    let flow = tiny_flow();
    let result = flow.run(&functions).expect("flow succeeds");
    assert_eq!(result.mapped.netlist.inputs().len(), 6);
    assert_eq!(result.mapped.netlist.outputs().len(), 4);
    mvf_sim::validate_mapped(
        &result.mapped,
        flow.library(),
        flow.camo_library(),
        &result.merged.functions,
    )
    .expect("all viable functions realizable");
}

#[test]
fn ga_never_loses_to_its_own_initial_population() {
    let functions = optimal_sboxes()[..2].to_vec();
    let flow = tiny_flow();
    let result = flow.run(&functions).expect("flow succeeds");
    let h = &result.ga_history;
    assert!(h.last().expect("history").best_so_far <= h[0].best_so_far);
}

#[test]
fn every_witnessed_function_has_a_doping_config() {
    let functions = optimal_sboxes()[..2].to_vec();
    let flow = tiny_flow();
    let result = flow.run(&functions).expect("flow succeeds");
    let camo = flow.camo_library();
    for w in &result.mapped.witness.cells {
        let inst = result.mapped.netlist.cell(w.cell);
        let mvf_netlist::CellRef::Camo(id) = inst.cell else {
            panic!("witness on non-camouflaged cell");
        };
        for f in &w.funcs_by_assign {
            assert!(
                camo.cell(id).config_for(f).is_some(),
                "function {f:?} needs a doping configuration on {}",
                camo.cell(id).name()
            );
        }
    }
}
