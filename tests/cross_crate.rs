//! Cross-crate integration: synthesis and both mappers preserve circuit
//! semantics; netlist I/O round-trips mapped circuits; the camouflage
//! condition (Alg. 1) holds on every emitted cell.

use mvf_aig::Script;
use mvf_cells::{CamoLibrary, Library};
use mvf_merge::{build_merged, PinAssignment};
use mvf_netlist::{io, subject_graph, CellRef};
use mvf_sboxes::{optimal_sboxes, present_sbox};
use mvf_techmap::{map_camouflage, map_standard, CamoMapOptions, MapOptions};

#[test]
fn synthesis_preserves_merged_semantics() {
    let functions = optimal_sboxes()[..4].to_vec();
    let merged = build_merged(&functions, &PinAssignment::identity(&functions)).unwrap();
    let synthesized = Script::standard().run(&merged.aig);
    assert!(synthesized.equivalent(&merged.aig));
    // And the merged contract still holds.
    let mut check = merged.clone();
    check.aig = synthesized;
    check
        .check()
        .expect("every select value realizes its function");
}

#[test]
fn plain_mapping_preserves_semantics() {
    let functions = vec![present_sbox()];
    let merged = build_merged(&functions, &PinAssignment::identity(&functions)).unwrap();
    let synthesized = Script::standard().run(&merged.aig);
    let lib = Library::standard();
    let subject = subject_graph::from_aig(&synthesized, &lib);
    let mapped = map_standard(&subject, &lib, &MapOptions::default()).unwrap();
    mapped.check(&lib).expect("well-formed");
    let outs = mvf_sim::eval_netlist(&mapped, &lib);
    assert_eq!(outs, synthesized.output_functions());
}

#[test]
fn camo_mapping_satisfies_alg1_condition_per_cell() {
    // Every camouflaged instance's required function set must be inside
    // its plausible set — the invariant of Alg. 1 line 8.
    let functions = optimal_sboxes()[..4].to_vec();
    let merged = build_merged(&functions, &PinAssignment::identity(&functions)).unwrap();
    let synthesized = Script::fast().run(&merged.aig);
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    let subject = subject_graph::from_aig(&synthesized, &lib);
    let mapped = map_camouflage(
        &subject,
        &lib,
        &camo,
        &merged.select_indices,
        &CamoMapOptions::default(),
    )
    .unwrap();
    assert!(!mapped.witness.cells.is_empty());
    for w in &mapped.witness.cells {
        let inst = mapped.netlist.cell(w.cell);
        let CellRef::Camo(id) = inst.cell else {
            panic!("witness on std cell")
        };
        for f in &w.funcs_by_assign {
            assert!(camo.cell(id).is_plausible(f));
        }
    }
}

#[test]
fn mapped_netlist_blif_roundtrip() {
    let functions = optimal_sboxes()[..2].to_vec();
    let merged = build_merged(&functions, &PinAssignment::identity(&functions)).unwrap();
    let lib = Library::standard();
    let subject = subject_graph::from_aig(&Script::fast().run(&merged.aig), &lib);
    let mapped = map_standard(&subject, &lib, &MapOptions::default()).unwrap();
    let text = io::to_blif(&mapped, &lib, None);
    let model = io::from_blif(&text).expect("parse back");
    assert_eq!(model.inputs.len(), mapped.inputs().len());
    assert_eq!(model.outputs.len(), mapped.outputs().len());
    // Rebuild functions from the parsed tables and compare to direct
    // evaluation.
    use std::collections::HashMap;
    let n = model.inputs.len();
    let mut env: HashMap<String, mvf_logic::TruthTable> = HashMap::new();
    for (i, name) in model.inputs.iter().enumerate() {
        env.insert(name.clone(), mvf_logic::TruthTable::var(i, n));
    }
    // Tables are topologically ordered by construction.
    for (ins, out, tt) in &model.tables {
        let mut acc = mvf_logic::TruthTable::zero(n);
        for m in 0..tt.n_minterms() {
            if !tt.get(m) {
                continue;
            }
            let mut term = mvf_logic::TruthTable::one(n);
            for (i, pin) in ins.iter().enumerate() {
                let t = env[pin].clone();
                term = if m & (1 << i) != 0 {
                    term.and(&t)
                } else {
                    term.and(&t.not())
                };
            }
            acc = acc.or(&term);
        }
        env.insert(out.clone(), acc);
    }
    let direct = mvf_sim::eval_netlist(&mapped, &lib);
    for ((name, _), expect) in mapped.outputs().iter().zip(&direct) {
        assert_eq!(&env[name], expect, "output {name}");
    }
}

#[test]
fn verilog_and_dot_render_camo_netlists() {
    let functions = optimal_sboxes()[..2].to_vec();
    let merged = build_merged(&functions, &PinAssignment::identity(&functions)).unwrap();
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    let subject = subject_graph::from_aig(&Script::fast().run(&merged.aig), &lib);
    let mapped = map_camouflage(
        &subject,
        &lib,
        &camo,
        &merged.select_indices,
        &CamoMapOptions::default(),
    )
    .unwrap();
    let v = io::to_verilog(&mapped.netlist, &lib, Some(&camo));
    assert!(v.contains("CAMO_"), "camouflaged instances are marked");
    let d = io::to_dot(&mapped.netlist, &lib, Some(&camo));
    assert!(d.contains("digraph"));
}

#[test]
fn area_accounting_is_consistent() {
    let functions = optimal_sboxes()[..2].to_vec();
    let merged = build_merged(&functions, &PinAssignment::identity(&functions)).unwrap();
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    let subject = subject_graph::from_aig(&Script::fast().run(&merged.aig), &lib);
    let mapped = map_camouflage(
        &subject,
        &lib,
        &camo,
        &merged.select_indices,
        &CamoMapOptions::default(),
    )
    .unwrap();
    let total = mapped.netlist.area_ge(&lib, Some(&camo));
    let from_hist: f64 = mapped
        .netlist
        .cell_histogram(&lib, Some(&camo))
        .iter()
        .map(|(name, count)| {
            let stripped = name.strip_prefix("camo-").unwrap_or(name);
            let id = lib.cell_by_name(stripped).expect("known cell");
            lib.cell(id).area_ge() * *count as f64
        })
        .sum();
    assert!((total - from_hist).abs() < 1e-9);
}
