//! Equivalence corpus for the arena-backed SAT solver.
//!
//! The clause database was repacked from per-clause `Vec`s into a single
//! flat `u32` arena; these tests pin the observable behavior to the seed
//! solver's contract: identical SAT/UNSAT verdicts (cross-checked against
//! brute force), models that satisfy every clause, assumption queries that
//! are fully undone, identical `plausibility_sweep` output across the
//! attack test corpus, and a propagation-heavy stress case that leans on
//! the in-place database reuse across queries.
//!
//! The scaling layers ride the same corpus: the order-heap decision mode
//! must agree with the linear activity scan on every verdict *and* model,
//! learnt-DB reduction under a tiny cap must leave every verdict
//! unchanged while bounding arena growth, and the sharded parallel sweep
//! must be bit-identical to the serial sweep for every shard count.
//!
//! The interpretation-freedom layer gets its own corpus: the any-IO
//! sweep (serial and sharded 1/2/4) must match brute-force permutation
//! enumeration on 3-bit blocks — verdicts *and* witness interpretations —
//! signature pruning (P-equivalence dedup of permuted candidates) must
//! never change an answer while strictly
//! cutting queries on symmetric candidates, the CSR watch pool must be
//! bit-identical to the `Vec<Vec<_>>` baseline, and Luby restarts must
//! be verdict-equivalent to the geometric schedule.
//!
//! The NPN completion extends that corpus to the full 2304-point
//! 3-bit orbit: the sweep must match a batched brute-force oracle
//! built from public logic primitives — verdicts *and* witness
//! transforms — and cross-candidate class sharing must be
//! answer-invisible while cutting work by at least the duplication
//! factor, for every shard count, with inprocessing on.
//!
//! The screen-then-solve funnel rides both corpora and two hand-built
//! circuits whose doping-configuration product is enumerable: screening
//! on must equal screening off *and* brute force — verdicts and
//! witnesses — on every sweep entry point; the surviving-config masks
//! must match exhaustive per-configuration circuit evaluation; a
//! complete screen must settle every orbit representative with zero SAT
//! queries and stay bit-identical across shard counts; and the sampling
//! regime (more minterms than vectors) must refute chaff SAT-free
//! without ever changing an identity-sweep verdict.

use mvf_attack::{
    is_plausible, plausibility_sweep, plausibility_sweep_any_io, plausibility_sweep_any_io_sharded,
    plausibility_sweep_any_io_with, plausibility_sweep_sharded, plausibility_sweep_with,
    random_camouflage, AnyIoOptions, AnyIoVerdict, CamoScreen, SweepOptions,
    DEFAULT_SCREEN_VECTORS,
};
use mvf_cells::{CamoLibrary, Library};
use mvf_logic::npn::all_permutations;
use mvf_logic::{IoInterpretation, VectorFunction};
use mvf_sat::{Lit, Solver, Var};
use mvf_sboxes::optimal_sboxes;

/// Deterministic xorshift stream for reproducible random instances.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn random_lit(rng: &mut XorShift, n_vars: usize) -> Lit {
    let v = Var((rng.next() % n_vars as u64) as u32);
    if rng.next() & 1 == 1 {
        Lit::neg(v)
    } else {
        Lit::pos(v)
    }
}

fn random_cnf(
    rng: &mut XorShift,
    n_vars: usize,
    n_clauses: usize,
    max_width: usize,
) -> Vec<Vec<Lit>> {
    let mut clauses = Vec::with_capacity(n_clauses);
    for _ in 0..n_clauses {
        let width = 1 + (rng.next() as usize) % max_width;
        let mut c = Vec::with_capacity(width);
        for _ in 0..width {
            c.push(random_lit(rng, n_vars));
        }
        clauses.push(c);
    }
    clauses
}

/// Brute-force satisfiability of `clauses ∪ units` over `n_vars`.
fn brute_force(clauses: &[Vec<Lit>], units: &[Lit], n_vars: usize) -> bool {
    (0..(1u32 << n_vars)).any(|m| {
        let sat = |l: &Lit| ((m >> l.var().0) & 1 == 1) != l.is_negative();
        units.iter().all(sat) && clauses.iter().all(|c| c.iter().any(sat))
    })
}

fn model_satisfies(s: &Solver, clauses: &[Vec<Lit>]) -> bool {
    clauses.iter().all(|c| {
        c.iter()
            .any(|l| s.value(l.var()).expect("full model") != l.is_negative())
    })
}

#[test]
fn verdicts_and_models_match_brute_force_on_random_cnfs() {
    let mut rng = XorShift(0x5EED_CAFE_F00D_D00D);
    for round in 0..60 {
        let n_vars = 4 + (rng.next() as usize) % 9; // 4..=12
        let n_clauses = 2 + (rng.next() as usize) % 40;
        let clauses = random_cnf(&mut rng, n_vars, n_clauses, 4);
        let mut s = Solver::new();
        for _ in 0..n_vars {
            s.new_var();
        }
        for c in &clauses {
            s.add_clause(c);
        }
        let got = s.solve();
        let want = brute_force(&clauses, &[], n_vars);
        assert_eq!(got, want, "round {round}: {clauses:?}");
        if got {
            assert!(model_satisfies(&s, &clauses), "round {round}");
        }
    }
}

#[test]
fn assumption_queries_match_brute_force_and_are_undone() {
    let mut rng = XorShift(0xA550_F1EA_5000_0001);
    for round in 0..30 {
        let n_vars = 6 + (rng.next() as usize) % 5; // 6..=10
        let n_clauses = 3 + (rng.next() as usize) % 25;
        let clauses = random_cnf(&mut rng, n_vars, n_clauses, 3);
        let mut s = Solver::new();
        for _ in 0..n_vars {
            s.new_var();
        }
        for c in &clauses {
            s.add_clause(c);
        }
        let base = brute_force(&clauses, &[], n_vars);
        // A run of assumption queries against one solver: each verdict
        // must match brute force with the assumptions as unit clauses,
        // and the final no-assumption verdict must be unchanged.
        for _ in 0..8 {
            let n_assumptions = 1 + (rng.next() as usize) % 3;
            let mut assumptions = Vec::with_capacity(n_assumptions);
            for _ in 0..n_assumptions {
                assumptions.push(random_lit(&mut rng, n_vars));
            }
            let got = s.solve_with(&assumptions);
            let want = brute_force(&clauses, &assumptions, n_vars);
            assert_eq!(got, want, "round {round}, assumptions {assumptions:?}");
            if got {
                assert!(model_satisfies(&s, &clauses));
                for a in &assumptions {
                    assert_eq!(s.value(a.var()), Some(!a.is_negative()));
                }
            }
        }
        assert_eq!(s.solve(), base, "round {round}: assumptions must be undone");
    }
}

#[test]
fn heap_and_linear_decide_modes_agree_on_the_full_corpus() {
    // The order heap breaks activity ties toward the lowest variable
    // index — exactly the linear scan's "first maximum" rule — so the
    // two modes must produce identical verdicts and identical models on
    // the whole random corpus, with and without assumptions.
    let mut rng = XorShift(0x04DE_4000_0000_0001);
    for round in 0..40 {
        let n_vars = 4 + (rng.next() as usize) % 9; // 4..=12
        let n_clauses = 2 + (rng.next() as usize) % 40;
        let clauses = random_cnf(&mut rng, n_vars, n_clauses, 4);
        let mut heap = Solver::new();
        let mut linear = Solver::new();
        linear.set_decision_heap(false);
        for _ in 0..n_vars {
            heap.new_var();
            linear.new_var();
        }
        for c in &clauses {
            heap.add_clause(c);
            linear.add_clause(c);
        }
        // Interleave plain and assumption queries on both solvers.
        for q in 0..6 {
            let n_assumptions = (rng.next() as usize) % 3;
            let mut assumptions = Vec::with_capacity(n_assumptions);
            for _ in 0..n_assumptions {
                assumptions.push(random_lit(&mut rng, n_vars));
            }
            let vh = heap.solve_with(&assumptions);
            let vl = linear.solve_with(&assumptions);
            assert_eq!(vh, vl, "round {round}, query {q}: verdicts differ");
            assert_eq!(
                vh,
                brute_force(&clauses, &assumptions, n_vars),
                "round {round}, query {q}: wrong verdict"
            );
            if vh {
                for v in 0..n_vars {
                    assert_eq!(
                        heap.value(Var(v as u32)),
                        linear.value(Var(v as u32)),
                        "round {round}, query {q}: models diverge at var {v}"
                    );
                }
            }
        }
    }
}

#[test]
fn reduce_db_under_assumptions_keeps_verdicts_and_bounds_the_arena() {
    // A capped solver is forced through many learnt-DB reductions while
    // answering assumption queries; every verdict must equal both the
    // uncapped solver's and brute force, and the capped arena must stay
    // within a fixed envelope of the problem clauses while the uncapped
    // one grows monotonically.
    let mut rng = XorShift(0x2ED0_CEDB_0000_0007);
    for round in 0..8 {
        let n_vars = 10 + (rng.next() as usize) % 3; // 10..=12
        let n_clauses = 38 + (rng.next() as usize) % 18;
        let clauses = random_cnf(&mut rng, n_vars, n_clauses, 3);
        let mut capped = Solver::new();
        capped.set_learnt_limit(8);
        let mut free = Solver::new();
        for _ in 0..n_vars {
            capped.new_var();
            free.new_var();
        }
        for c in &clauses {
            capped.add_clause(c);
            free.add_clause(c);
        }
        let problem_words = capped.arena_words();
        for q in 0..25 {
            let n_assumptions = 1 + (rng.next() as usize) % 4;
            let mut assumptions = Vec::with_capacity(n_assumptions);
            for _ in 0..n_assumptions {
                assumptions.push(random_lit(&mut rng, n_vars));
            }
            let vc = capped.solve_with(&assumptions);
            assert_eq!(
                vc,
                free.solve_with(&assumptions),
                "round {round}, query {q}: capped and uncapped verdicts differ"
            );
            assert_eq!(
                vc,
                brute_force(&clauses, &assumptions, n_vars),
                "round {round}, query {q}: wrong verdict"
            );
            if vc {
                assert!(model_satisfies(&capped, &clauses));
            }
        }
        // The cap is on cold learnts (glue and locked clauses are
        // exempt), so the envelope is the problem size plus a fixed
        // learnt allowance — far below unbounded growth.
        assert!(
            capped.arena_words() <= problem_words + 64 * (n_vars + 1),
            "round {round}: capped arena grew to {} words ({} problem)",
            capped.arena_words(),
            problem_words
        );
        if free.n_learnts() > 16 {
            assert!(
                capped.n_reductions() > 0,
                "round {round}: the cap never triggered a reduction"
            );
            assert!(
                capped.arena_words() < free.arena_words(),
                "round {round}: reduction did not shrink the arena ({} vs {})",
                capped.arena_words(),
                free.arena_words()
            );
        }
    }
}

#[test]
fn sharded_sweep_matches_serial_for_every_shard_count() {
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    let present = optimal_sboxes();
    let circuit = random_camouflage(&present[0], &lib, &camo).expect("buildable");
    let candidates = &present[..5];
    let serial = plausibility_sweep(&circuit, &lib, &camo, candidates);
    for shards in [1usize, 2, 4] {
        let sharded = plausibility_sweep_sharded(&circuit, &lib, &camo, candidates, shards);
        assert_eq!(
            serial, sharded,
            "sharded sweep with {shards} shards diverged from serial"
        );
    }
}

#[test]
fn plausibility_sweep_matches_per_candidate_queries_on_attack_corpus() {
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    let present = optimal_sboxes();
    // The batched incremental-solver verdicts must equal fresh
    // per-candidate encodings.
    let circuit = random_camouflage(&present[0], &lib, &camo).expect("buildable");
    let candidates = &present[..5];
    let swept = plausibility_sweep(&circuit, &lib, &camo, candidates);
    assert_eq!(swept.len(), candidates.len());
    for (j, (f, &verdict)) in candidates.iter().zip(&swept).enumerate() {
        assert_eq!(
            verdict,
            is_plausible(&circuit, &lib, &camo, f),
            "PRESENT candidate {j}"
        );
    }
    assert!(swept[0], "the true function is always plausible");
    // A second sweep over a fresh encoding of the same netlist must agree
    // verdict for verdict (the learnt clauses kept in the arena across
    // queries never change answers).
    let again = plausibility_sweep(&circuit, &lib, &camo, candidates);
    assert_eq!(swept, again, "sweeps over one netlist are deterministic");
}

#[test]
fn designed_circuit_sweep_is_all_true() {
    // The full designed flow (merge → synthesize → camouflage-map) must
    // keep every viable function plausible under the batched adversary.
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    let funcs = optimal_sboxes()[..2].to_vec();
    let assignment = mvf_merge::PinAssignment::identity(&funcs);
    let merged = mvf_merge::build_merged(&funcs, &assignment).expect("mergeable");
    let synthesized = mvf_aig::Script::fast().run(&merged.aig);
    let subject = mvf_netlist::subject_graph::from_aig(&synthesized, &lib);
    let mapped = mvf_techmap::map_camouflage(
        &subject,
        &lib,
        &camo,
        &merged.select_indices,
        &mvf_techmap::CamoMapOptions::default(),
    )
    .expect("mappable");
    let verdicts = plausibility_sweep(&mapped.netlist, &lib, &camo, &merged.functions);
    assert!(verdicts.iter().all(|&v| v), "verdicts: {verdicts:?}");
}

/// The 3-bit any-IO corpus: a camouflaged netlist plus candidates that
/// exercise every verdict shape — a scrambled variant of the true
/// function (plausible under a non-identity interpretation), the true
/// function itself (identity witness), an input-symmetric candidate
/// (pruning collapses whole permutation classes) and an implausible one
/// (full orbit refutation).
fn any_io_corpus() -> (
    Library,
    CamoLibrary,
    mvf_netlist::Netlist,
    Vec<VectorFunction>,
) {
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    let lut3 = |t: &[u16; 8]| VectorFunction::from_lookup_table(3, 3, t).unwrap();
    let f = lut3(&[1, 0, 3, 2, 5, 7, 6, 4]);
    let circuit = random_camouflage(&f, &lib, &camo).expect("buildable");
    let scrambled = f
        .permute_inputs(&[1, 2, 0])
        .unwrap()
        .permute_outputs(&[2, 0, 1])
        .unwrap();
    let sym = {
        use mvf_logic::TruthTable;
        let a = TruthTable::var(0, 3);
        let b = TruthTable::var(1, 3);
        let c = TruthTable::var(2, 3);
        VectorFunction::new(
            3,
            vec![
                a.and(&b).and(&c),
                a.xor(&b).xor(&c),
                TruthTable::from_fn(3, |m| m.count_ones() >= 2),
            ],
        )
    };
    let candidates = vec![scrambled, f, sym, lut3(&[0, 1, 2, 3, 4, 5, 6, 7])];
    (lib, camo, circuit, candidates)
}

/// Brute-force interpretation freedom: try every `(in_perm, out_perm)`
/// pair (input-permutation major, lexicographic — the sweep's
/// enumeration order) through fresh [`is_plausible`] encodings, and
/// report the first satisfying pair.
fn brute_force_any_io(
    nl: &mvf_netlist::Netlist,
    lib: &Library,
    camo: &CamoLibrary,
    candidate: &VectorFunction,
) -> (bool, Option<IoInterpretation>) {
    for ip in all_permutations(candidate.n_inputs()) {
        for op in all_permutations(candidate.n_outputs()) {
            let g = candidate
                .permute_inputs(&ip)
                .unwrap()
                .permute_outputs(&op)
                .unwrap();
            if is_plausible(nl, lib, camo, &g) {
                return (true, Some(IoInterpretation::from_perms(ip, op)));
            }
        }
    }
    (false, None)
}

/// Every NPN interpretation in the sweep's enumeration order: input
/// permutations outermost, then input negation masks along the Gray
/// code, then output permutations, then output negation masks (Gray
/// again) — the flat-index layout the orbit walk commits to.
fn npn_interpretations(n_in: usize, n_out: usize) -> Vec<IoInterpretation> {
    let gray = |p: u32| p ^ (p >> 1);
    let mut all = Vec::new();
    for ip in all_permutations(n_in) {
        for ig in 0..1u32 << n_in {
            for op in all_permutations(n_out) {
                for og in 0..1u32 << n_out {
                    all.push(IoInterpretation {
                        in_perm: ip.clone(),
                        in_neg: gray(ig),
                        out_perm: op.clone(),
                        out_neg: gray(og),
                    });
                }
            }
        }
    }
    all
}

#[test]
fn any_io_sweep_matches_brute_force_and_every_shard_count() {
    let (lib, camo, circuit, candidates) = any_io_corpus();
    let serial = plausibility_sweep_any_io(&circuit, &lib, &camo, &candidates);
    assert_eq!(serial.len(), candidates.len());
    // Serial sweep vs. brute-force permutation enumeration: verdict and
    // witness must coincide exactly (the sweep's witness is defined as
    // the first satisfying pair in the same enumeration order).
    for (j, (f, v)) in candidates.iter().zip(&serial).enumerate() {
        let (want, want_witness) = brute_force_any_io(&circuit, &lib, &camo, f);
        assert_eq!(v.plausible, want, "candidate {j}: verdict");
        assert_eq!(v.witness, want_witness, "candidate {j}: witness");
        assert_eq!(v.orbit, 36, "candidate {j}: 3! · 3! orbit");
        assert!(v.unique <= v.orbit);
        if !v.plausible {
            assert_eq!(
                v.queries + v.screened,
                v.unique,
                "candidate {j}: a refutation must cover every representative \
                 (screened SAT-free or queried)"
            );
        }
    }
    // The corpus covers both polarities.
    assert!(serial[0].plausible, "scrambled true function");
    assert!(serial[1].plausible, "true function, identity witness");
    assert_eq!(
        serial[1].witness,
        Some(IoInterpretation::from_perms(vec![0, 1, 2], vec![0, 1, 2])),
        "identity interpretation is orbit index 0"
    );
    assert!(!serial[3].plausible, "the identity LUT is not in the orbit");
    // Sharded sweeps: bit-identical verdicts *and* witnesses for every
    // shard count (queries may differ — early exit is cooperative).
    let key = |vs: &[AnyIoVerdict]| -> Vec<(bool, Option<IoInterpretation>)> {
        vs.iter()
            .map(|v| (v.plausible, v.witness.clone()))
            .collect()
    };
    for shards in [1usize, 2, 4] {
        let sharded = plausibility_sweep_any_io_sharded(&circuit, &lib, &camo, &candidates, shards);
        assert_eq!(key(&serial), key(&sharded), "shards = {shards}");
    }
}

#[test]
fn any_io_pruning_never_changes_a_verdict_and_strictly_cuts_queries() {
    let (lib, camo, circuit, candidates) = any_io_corpus();
    // Screening off on both sides: this test isolates the effect of
    // signature pruning on the SAT query count.
    let pruned = plausibility_sweep_any_io_with(
        &circuit,
        &lib,
        &camo,
        &candidates,
        &AnyIoOptions {
            shards: 1,
            screen: false,
            ..AnyIoOptions::default()
        },
    );
    let brute = plausibility_sweep_any_io_with(
        &circuit,
        &lib,
        &camo,
        &candidates,
        &AnyIoOptions {
            shards: 1,
            prune: false,
            screen: false,
            ..AnyIoOptions::default()
        },
    );
    for (j, (p, b)) in pruned.iter().zip(&brute).enumerate() {
        assert_eq!(p.plausible, b.plausible, "candidate {j}: verdict");
        assert_eq!(p.witness, b.witness, "candidate {j}: witness");
        assert_eq!(b.unique, b.orbit, "unpruned sweep keeps the full orbit");
    }
    // The input-symmetric candidate (index 2) collapses its 36-point
    // orbit to the 6 output permutations — strictly fewer queries than
    // brute force on this ≥3-input block.
    assert_eq!(pruned[2].unique, 6, "input symmetry leaves only out-perms");
    assert!(
        pruned[2].queries < brute[2].queries,
        "pruning must issue strictly fewer queries ({} vs {})",
        pruned[2].queries,
        brute[2].queries
    );
}

#[test]
fn any_io_witnesses_satisfy_their_interpretation() {
    let (lib, camo, circuit, candidates) = any_io_corpus();
    let verdicts = plausibility_sweep_any_io_sharded(&circuit, &lib, &camo, &candidates, 2);
    let mut witnessed = 0;
    for (f, v) in candidates.iter().zip(&verdicts) {
        if let Some(w) = &v.witness {
            assert!(v.plausible, "witness implies plausible");
            let g = w.apply(f).unwrap();
            assert!(
                is_plausible(&circuit, &lib, &camo, &g),
                "reported witness must satisfy the identity-interpretation test"
            );
            witnessed += 1;
        }
    }
    assert!(witnessed >= 2, "the corpus has plausible candidates");
}

/// The 3-bit NPN corpus: the camouflaged netlist of one function plus
/// candidates covering every verdict shape under the *complete* NPN
/// group — an NPN-transformed copy of the true function (plausible with
/// a negation-bearing witness), the true function itself (identity
/// witness), and a function outside every realizable NPN class (full
/// 2304-point refutation; verified against brute force below).
fn npn_corpus() -> (
    Library,
    CamoLibrary,
    mvf_netlist::Netlist,
    Vec<VectorFunction>,
) {
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    let lut3 = |t: &[u16; 8]| VectorFunction::from_lookup_table(3, 3, t).unwrap();
    let f = lut3(&[1, 0, 3, 2, 5, 7, 6, 4]);
    let circuit = random_camouflage(&f, &lib, &camo).expect("buildable");
    let transform = IoInterpretation {
        in_perm: vec![1, 2, 0],
        in_neg: 0b101,
        out_perm: vec![2, 0, 1],
        out_neg: 0b011,
    };
    let candidates = vec![
        transform.apply(&f).unwrap(),
        f,
        lut3(&[7, 1, 0, 2, 4, 3, 6, 5]),
    ];
    (lib, camo, circuit, candidates)
}

#[test]
fn npn_sweep_matches_batched_brute_force_on_the_full_orbit() {
    // The oracle enumerates all 3!·2³·3!·2³ = 2304 NPN interpretations
    // with public logic primitives in the layout order the sweep commits
    // to, materializes every transformed function, and settles them with
    // one batched *identity* sweep per candidate — an independent code
    // path (no orbit walk, no unranking). Verdict AND witness transform
    // must coincide exactly: the sweep's witness is defined as the first
    // satisfying interpretation in this order.
    let (lib, camo, circuit, candidates) = npn_corpus();
    let interps = npn_interpretations(3, 3);
    assert_eq!(interps.len(), 2304, "3! · 2^3 · 3! · 2^3");
    let opts = AnyIoOptions {
        npn: true,
        ..AnyIoOptions::default()
    };
    let serial = plausibility_sweep_any_io_with(&circuit, &lib, &camo, &candidates, &opts);
    for (j, (f, v)) in candidates.iter().zip(&serial).enumerate() {
        let orbit_fns: Vec<VectorFunction> = interps.iter().map(|t| t.apply(f).unwrap()).collect();
        let oracle = plausibility_sweep(&circuit, &lib, &camo, &orbit_fns);
        let want = oracle.iter().position(|&p| p);
        assert_eq!(v.plausible, want.is_some(), "candidate {j}: verdict");
        assert_eq!(
            v.witness,
            want.map(|i| interps[i].clone()),
            "candidate {j}: witness transform"
        );
        assert_eq!(v.orbit, 2304, "candidate {j}: full NPN orbit");
        assert!(v.unique <= v.orbit);
        if !v.plausible {
            assert_eq!(
                v.queries + v.screened,
                v.unique,
                "candidate {j}: a refutation must cover every representative"
            );
        }
    }
    assert!(serial[0].plausible, "NPN-transformed true function");
    assert!(serial[1].plausible, "true function");
    assert!(
        serial[1]
            .witness
            .as_ref()
            .is_some_and(IoInterpretation::is_identity),
        "the identity interpretation is NPN orbit index 0"
    );
    let w0 = serial[0].witness.as_ref().expect("plausible has a witness");
    assert!(
        w0.in_neg != 0 || w0.out_neg != 0,
        "the transformed copy needs a polarity flip: {w0:?}"
    );
    assert!(!serial[2].plausible, "outside every realizable NPN class");
    // Sharded sweeps: identical verdicts and witnesses for every shard
    // count (query counts may differ — early exit is cooperative).
    let key = |vs: &[AnyIoVerdict]| -> Vec<(bool, Option<IoInterpretation>)> {
        vs.iter()
            .map(|v| (v.plausible, v.witness.clone()))
            .collect()
    };
    for shards in [1usize, 2, 4] {
        let sharded = plausibility_sweep_any_io_with(
            &circuit,
            &lib,
            &camo,
            &candidates,
            &AnyIoOptions {
                shards,
                ..opts.clone()
            },
        );
        assert_eq!(key(&serial), key(&sharded), "shards = {shards}");
    }
}

#[test]
fn npn_class_sharing_never_changes_answers_and_cuts_work_by_the_class_size() {
    // A duplicate-seeded batch: one NPN-implausible function plus two
    // NPN-transformed copies — three members of one interpretation
    // class, each of which would refute the same 1152 orbit functions.
    // Class sharing must leave every verdict and witness untouched while
    // cutting total work (SAT queries + screen passes) by at least the
    // duplication factor: the first member pays for the class, the
    // others resolve every representative from the shared verdict cache.
    let (lib, camo, circuit, _) = npn_corpus();
    let c = VectorFunction::from_lookup_table(3, 3, &[7, 1, 0, 2, 4, 3, 6, 5]).unwrap();
    let t1 = IoInterpretation {
        in_perm: vec![1, 2, 0],
        in_neg: 0b011,
        out_perm: vec![2, 0, 1],
        out_neg: 0b100,
    };
    let t2 = IoInterpretation {
        in_perm: vec![2, 0, 1],
        in_neg: 0b110,
        out_perm: vec![1, 2, 0],
        out_neg: 0b001,
    };
    let trio = vec![c.clone(), t1.apply(&c).unwrap(), t2.apply(&c).unwrap()];
    let npn = AnyIoOptions {
        npn: true,
        ..AnyIoOptions::default()
    };
    let solo = plausibility_sweep_any_io_with(&circuit, &lib, &camo, &trio, &npn);
    let shared = plausibility_sweep_any_io_with(
        &circuit,
        &lib,
        &camo,
        &trio,
        &AnyIoOptions {
            class_share: true,
            ..npn.clone()
        },
    );
    for (j, (a, b)) in solo.iter().zip(&shared).enumerate() {
        assert_eq!(a.plausible, b.plausible, "member {j}: verdict");
        assert_eq!(a.witness, b.witness, "member {j}: witness");
        assert!(!b.plausible, "member {j}: the whole class is implausible");
        assert_eq!(a.unique, b.unique, "member {j}: dedup is share-independent");
        // Without sharing every candidate is its own class; with it the
        // batch collapses into one class of three.
        assert_eq!((a.class, a.class_size), (j, 1), "member {j}: solo class");
        assert_eq!((b.class, b.class_size), (0, 3), "member {j}: shared class");
    }
    // Later class members inherit the first member's refutations without
    // issuing a single SAT query of their own.
    assert_eq!(shared[1].queries, 0, "member 1 rides the verdict cache");
    assert_eq!(shared[2].queries, 0, "member 2 rides the verdict cache");
    let cost = |vs: &[AnyIoVerdict]| -> usize { vs.iter().map(|v| v.queries + v.screened).sum() };
    let (solo_cost, shared_cost) = (cost(&solo), cost(&shared));
    assert!(shared_cost > 0, "the class owner still pays");
    assert!(
        solo_cost >= 3 * shared_cost,
        "sharing must cut work by at least the duplication factor \
         ({solo_cost} solo vs {shared_cost} shared)"
    );
}

#[test]
fn npn_sharded_sweep_with_sharing_and_inprocessing_is_consistent() {
    // Everything on at once: the full NPN orbit, cross-candidate class
    // sharing, solver inprocessing, and 1/2/4 shards must all agree on
    // every verdict and witness (query counts may differ under sharded
    // sharing — cache races are benign).
    let (lib, camo, circuit, candidates) = npn_corpus();
    let opts = AnyIoOptions {
        npn: true,
        class_share: true,
        inprocess: true,
        ..AnyIoOptions::default()
    };
    let serial = plausibility_sweep_any_io_with(&circuit, &lib, &camo, &candidates, &opts);
    // The transformed copy walks the true function's whole orbit, so the
    // true function itself joins its class.
    assert_eq!(
        (serial[0].class, serial[0].class_size),
        (0, 2),
        "transform and original share a class"
    );
    assert_eq!((serial[1].class, serial[1].class_size), (0, 2));
    assert_eq!((serial[2].class, serial[2].class_size), (1, 1));
    let key = |vs: &[AnyIoVerdict]| -> Vec<(bool, Option<IoInterpretation>)> {
        vs.iter()
            .map(|v| (v.plausible, v.witness.clone()))
            .collect()
    };
    for shards in [1usize, 2, 4] {
        let sharded = plausibility_sweep_any_io_with(
            &circuit,
            &lib,
            &camo,
            &candidates,
            &AnyIoOptions {
                shards,
                ..opts.clone()
            },
        );
        assert_eq!(key(&serial), key(&sharded), "shards = {shards}");
    }
}

#[test]
fn csr_and_vec_watch_lists_agree_on_verdicts_and_models() {
    // The CSR watch pool preserves the Vec<Vec<_>> baseline's list
    // orders and traversal exactly, so whole solver runs — verdicts and
    // models, under assumption sequences — must be bit-identical.
    let mut rng = XorShift(0xC5_2000_0001);
    for round in 0..25 {
        let n_vars = 5 + (rng.next() as usize) % 8; // 5..=12
        let n_clauses = 4 + (rng.next() as usize) % 36;
        let clauses = random_cnf(&mut rng, n_vars, n_clauses, 4);
        let mut csr = Solver::new();
        let mut vecs = Solver::new();
        vecs.set_watch_csr(false);
        for _ in 0..n_vars {
            csr.new_var();
            vecs.new_var();
        }
        for c in &clauses {
            csr.add_clause(c);
            vecs.add_clause(c);
        }
        for q in 0..6 {
            let n_assumptions = (rng.next() as usize) % 3;
            let mut assumptions = Vec::with_capacity(n_assumptions);
            for _ in 0..n_assumptions {
                assumptions.push(random_lit(&mut rng, n_vars));
            }
            let vc = csr.solve_with(&assumptions);
            let vv = vecs.solve_with(&assumptions);
            assert_eq!(vc, vv, "round {round}, query {q}: verdicts differ");
            assert_eq!(
                vc,
                brute_force(&clauses, &assumptions, n_vars),
                "round {round}, query {q}: wrong verdict"
            );
            if vc {
                for v in 0..n_vars {
                    assert_eq!(
                        csr.value(Var(v as u32)),
                        vecs.value(Var(v as u32)),
                        "round {round}, query {q}: models diverge at var {v}"
                    );
                }
            }
        }
    }
}

#[test]
fn luby_and_geometric_restarts_are_verdict_equivalent() {
    // Restart scheduling (and Luby mode's rare stagnation phase flips)
    // may change the search trajectory but never an answer.
    let mut rng = XorShift(0x1B1_BEEF_0001);
    for round in 0..20 {
        let n_vars = 6 + (rng.next() as usize) % 6; // 6..=11
        let n_clauses = 20 + (rng.next() as usize) % 30;
        let clauses = random_cnf(&mut rng, n_vars, n_clauses, 3);
        let mut geo = Solver::new();
        let mut lub = Solver::new();
        lub.set_restart_luby(true);
        for _ in 0..n_vars {
            geo.new_var();
            lub.new_var();
        }
        for c in &clauses {
            geo.add_clause(c);
            lub.add_clause(c);
        }
        for q in 0..5 {
            let n_assumptions = (rng.next() as usize) % 3;
            let mut assumptions = Vec::with_capacity(n_assumptions);
            for _ in 0..n_assumptions {
                assumptions.push(random_lit(&mut rng, n_vars));
            }
            let want = brute_force(&clauses, &assumptions, n_vars);
            assert_eq!(
                geo.solve_with(&assumptions),
                want,
                "round {round}, query {q}: geometric"
            );
            assert_eq!(
                lub.solve_with(&assumptions),
                want,
                "round {round}, query {q}: luby"
            );
        }
    }
}

#[test]
fn propagation_heavy_stress() {
    // A 20k-variable implication chain: every query triggers a full-length
    // unit-propagation cascade through the arena's watch lists, and the
    // same database answers many assumption queries in place.
    const N: usize = 20_000;
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..N).map(|_| s.new_var()).collect();
    for w in vars.windows(2) {
        s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
    }
    // Forward chain: assuming the head forces the whole chain true.
    assert!(s.solve_with(&[Lit::pos(vars[0])]));
    assert_eq!(s.value(vars[N - 1]), Some(true));
    // Contradictory endpoints are refuted by pure propagation.
    assert!(!s.solve_with(&[Lit::pos(vars[0]), Lit::neg(vars[N - 1])]));
    // Mid-chain assumptions, repeated to exercise database reuse.
    for k in [1usize, N / 2, N - 2] {
        assert!(s.solve_with(&[Lit::pos(vars[k])]));
        assert_eq!(s.value(vars[N - 1]), Some(true));
    }
    // The instance without assumptions stays satisfiable.
    assert!(s.solve());

    // A conflict-heavy UNSAT core on the same solver style: pigeonhole
    // 5 into 4 forces real clause learning and restarts.
    let mut s = Solver::new();
    let mut p = vec![[Var(0); 4]; 5];
    for row in p.iter_mut() {
        for slot in row.iter_mut() {
            *slot = s.new_var();
        }
    }
    for row in &p {
        let lits: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
        s.add_clause(&lits);
    }
    #[allow(clippy::needless_range_loop)]
    for j in 0..4 {
        for a in 0..5 {
            for b in (a + 1)..5 {
                s.add_clause(&[Lit::neg(p[a][j]), Lit::neg(p[b][j])]);
            }
        }
    }
    let before = s.n_clauses();
    assert!(!s.solve());
    assert!(
        s.n_clauses() > before,
        "conflict learning must grow the clause arena"
    );
}

/// An all-techniques-off solver: the seed CDCL loop with no
/// inprocessing, geometric restarts and flat (untired) reduction.
fn baseline_solver(n_vars: usize) -> Solver {
    let mut s = Solver::new();
    s.set_vivify(false);
    s.set_eliminate(false);
    s.set_restart_ema(false);
    s.set_reduce_tiered(false);
    for _ in 0..n_vars {
        s.new_var();
    }
    s
}

#[test]
fn simplify_with_all_techniques_off_is_a_no_op() {
    // Disabled means disabled: with every inprocessing toggle off,
    // `simplify` must leave the arena untouched, report zero work, and
    // change no verdict or model relative to never calling it.
    let mut rng = XorShift(0x0FF0_0FF0_0000_0001);
    for round in 0..20 {
        let n_vars = 4 + (rng.next() as usize) % 9;
        let n_clauses = 2 + (rng.next() as usize) % 40;
        let clauses = random_cnf(&mut rng, n_vars, n_clauses, 4);
        let mut plain = baseline_solver(n_vars);
        let mut simplified = baseline_solver(n_vars);
        for c in &clauses {
            plain.add_clause(c);
            simplified.add_clause(c);
        }
        let words = simplified.arena_words();
        simplified.simplify();
        assert_eq!(
            simplified.arena_words(),
            words,
            "round {round}: all-off simplify touched the arena"
        );
        assert_eq!(
            simplified.simplify_stats(),
            mvf_sat::SimplifyStats::default(),
            "round {round}: all-off simplify reported work"
        );
        for q in 0..6 {
            let n_assumptions = (rng.next() as usize) % 3;
            let mut assumptions = Vec::with_capacity(n_assumptions);
            for _ in 0..n_assumptions {
                assumptions.push(random_lit(&mut rng, n_vars));
            }
            let vp = plain.solve_with(&assumptions);
            assert_eq!(
                vp,
                simplified.solve_with(&assumptions),
                "round {round}, query {q}: verdicts differ"
            );
            if vp {
                for v in 0..n_vars {
                    assert_eq!(
                        plain.value(Var(v as u32)),
                        simplified.value(Var(v as u32)),
                        "round {round}, query {q}: models diverge at var {v}"
                    );
                }
            }
        }
    }
}

#[test]
fn vivification_on_and_off_match_brute_force() {
    // Vivification rewrites problem clauses into equivalent (not merely
    // equisatisfiable) ones, so with the other techniques off the
    // vivified solver must agree with brute force — verdicts and
    // satisfying models — across assumption sequences, with no model
    // reconstruction involved.
    let mut rng = XorShift(0x71F1_F1ED_0000_0003);
    for round in 0..25 {
        let n_vars = 5 + (rng.next() as usize) % 8; // 5..=12
        let n_clauses = 10 + (rng.next() as usize) % 30;
        let clauses = random_cnf(&mut rng, n_vars, n_clauses, 4);
        let mut viv = baseline_solver(n_vars);
        viv.set_vivify(true);
        let mut off = baseline_solver(n_vars);
        for c in &clauses {
            viv.add_clause(c);
            off.add_clause(c);
        }
        viv.simplify();
        for q in 0..8 {
            let n_assumptions = (rng.next() as usize) % 3;
            let mut assumptions = Vec::with_capacity(n_assumptions);
            for _ in 0..n_assumptions {
                assumptions.push(random_lit(&mut rng, n_vars));
            }
            let want = brute_force(&clauses, &assumptions, n_vars);
            assert_eq!(
                viv.solve_with(&assumptions),
                want,
                "round {round}, query {q}: vivified verdict"
            );
            assert_eq!(
                off.solve_with(&assumptions),
                want,
                "round {round}, query {q}: baseline verdict"
            );
            if want {
                assert!(
                    model_satisfies(&viv, &clauses),
                    "round {round}, query {q}: vivified model violates an \
                     original clause"
                );
            }
        }
    }
}

#[test]
fn elimination_reconstructs_models_under_assumptions() {
    // Bounded variable elimination removes variables from the problem;
    // `model()` must transparently reconstruct their values, so every
    // satisfying assignment — including ones constrained through frozen
    // assumption variables — must satisfy every ORIGINAL clause.
    let mut rng = XorShift(0xB7E0_0000_0000_0005);
    for round in 0..25 {
        let n_vars = 5 + (rng.next() as usize) % 8; // 5..=12
        let n_clauses = 6 + (rng.next() as usize) % 26;
        let clauses = random_cnf(&mut rng, n_vars, n_clauses, 3);
        // Pre-draw the whole query schedule so the assumption variables
        // can be frozen before elimination runs.
        let queries: Vec<Vec<Lit>> = (0..8)
            .map(|_| {
                let n = (rng.next() as usize) % 3;
                (0..n).map(|_| random_lit(&mut rng, n_vars)).collect()
            })
            .collect();
        let mut bve = baseline_solver(n_vars);
        bve.set_eliminate(true);
        for c in &clauses {
            bve.add_clause(c);
        }
        for q in &queries {
            for a in q {
                bve.set_frozen(a.var(), true);
            }
        }
        bve.simplify();
        let eliminated = (0..n_vars)
            .filter(|&v| bve.is_eliminated(Var(v as u32)))
            .count();
        for (q, assumptions) in queries.iter().enumerate() {
            let want = brute_force(&clauses, assumptions, n_vars);
            assert_eq!(
                bve.solve_with(assumptions),
                want,
                "round {round}, query {q}: verdict after elimination"
            );
            if want {
                assert!(
                    model_satisfies(&bve, &clauses),
                    "round {round}, query {q}: reconstructed model violates \
                     an original clause ({eliminated} vars eliminated)"
                );
                for a in assumptions {
                    assert_eq!(
                        bve.value(a.var()),
                        Some(!a.is_negative()),
                        "round {round}, query {q}: assumption dropped"
                    );
                }
            }
        }
    }
}

#[test]
fn ema_and_geometric_restarts_are_verdict_equivalent() {
    // The fast/slow-EMA stabilizing schedule changes only WHEN the
    // search restarts, never an answer: on a conflict-heavy corpus both
    // modes must match brute force, and the EMA solver's models must
    // satisfy every clause.
    let mut rng = XorShift(0xE3A0_0000_0000_0009);
    for round in 0..20 {
        let n_vars = 6 + (rng.next() as usize) % 6; // 6..=11
        let n_clauses = 20 + (rng.next() as usize) % 30;
        let clauses = random_cnf(&mut rng, n_vars, n_clauses, 3);
        let mut ema = baseline_solver(n_vars);
        ema.set_restart_ema(true);
        let mut geo = baseline_solver(n_vars);
        for c in &clauses {
            ema.add_clause(c);
            geo.add_clause(c);
        }
        for q in 0..5 {
            let n_assumptions = (rng.next() as usize) % 3;
            let mut assumptions = Vec::with_capacity(n_assumptions);
            for _ in 0..n_assumptions {
                assumptions.push(random_lit(&mut rng, n_vars));
            }
            let want = brute_force(&clauses, &assumptions, n_vars);
            assert_eq!(
                ema.solve_with(&assumptions),
                want,
                "round {round}, query {q}: ema"
            );
            assert_eq!(
                geo.solve_with(&assumptions),
                want,
                "round {round}, query {q}: geometric"
            );
            if want {
                assert!(model_satisfies(&ema, &clauses));
            }
        }
    }
}

#[test]
fn tiered_and_flat_reduce_keep_verdicts_under_a_tight_cap() {
    // Tier-aware reduction protects core (glue) clauses and demotes
    // locals first; under a tight learnt cap it must still never change
    // a verdict relative to flat LBD/activity reduction or brute force.
    let mut rng = XorShift(0x71E2_EDDB_0000_000B);
    for round in 0..8 {
        let n_vars = 10 + (rng.next() as usize) % 3; // 10..=12
        let n_clauses = 38 + (rng.next() as usize) % 18;
        let clauses = random_cnf(&mut rng, n_vars, n_clauses, 3);
        let mut tiered = baseline_solver(n_vars);
        tiered.set_reduce_tiered(true);
        tiered.set_learnt_limit(8);
        let mut flat = baseline_solver(n_vars);
        flat.set_learnt_limit(8);
        for c in &clauses {
            tiered.add_clause(c);
            flat.add_clause(c);
        }
        for q in 0..25 {
            let n_assumptions = 1 + (rng.next() as usize) % 4;
            let mut assumptions = Vec::with_capacity(n_assumptions);
            for _ in 0..n_assumptions {
                assumptions.push(random_lit(&mut rng, n_vars));
            }
            let want = brute_force(&clauses, &assumptions, n_vars);
            assert_eq!(
                tiered.solve_with(&assumptions),
                want,
                "round {round}, query {q}: tiered"
            );
            assert_eq!(
                flat.solve_with(&assumptions),
                want,
                "round {round}, query {q}: flat"
            );
            if want {
                assert!(model_satisfies(&tiered, &clauses));
            }
        }
    }
}

#[test]
fn all_techniques_together_match_brute_force() {
    // The defaults: vivification, elimination, EMA restarts and tiered
    // reduction all on, with an explicit simplify() between query
    // batches (the sweep-batch usage pattern).
    let mut rng = XorShift(0xA11F_0042_0000_000D);
    for round in 0..20 {
        let n_vars = 6 + (rng.next() as usize) % 7; // 6..=12
        let n_clauses = 12 + (rng.next() as usize) % 32;
        let clauses = random_cnf(&mut rng, n_vars, n_clauses, 3);
        let queries: Vec<Vec<Lit>> = (0..10)
            .map(|_| {
                let n = (rng.next() as usize) % 3;
                (0..n).map(|_| random_lit(&mut rng, n_vars)).collect()
            })
            .collect();
        let mut s = Solver::new();
        for _ in 0..n_vars {
            s.new_var();
        }
        for c in &clauses {
            s.add_clause(c);
        }
        for q in queries.iter().flatten() {
            s.set_frozen(q.var(), true);
        }
        s.simplify();
        for (q, assumptions) in queries.iter().enumerate() {
            // Re-simplify mid-run half way through, as a sweep batch
            // boundary would.
            if q == 5 {
                s.simplify();
            }
            let want = brute_force(&clauses, assumptions, n_vars);
            assert_eq!(s.solve_with(assumptions), want, "round {round}, query {q}");
            if want {
                assert!(model_satisfies(&s, &clauses), "round {round}, query {q}");
            }
        }
    }
}

#[test]
fn inprocessed_any_io_sweep_is_bit_identical_to_uninprocessed() {
    // Inprocessing shrinks the encoded database before and between
    // queries but never changes what the sweep reports: serial verdicts
    // are equal field for field (queries included), and sharded sweeps
    // stay consistent across 1/2/4 shards with inprocessing enabled.
    //
    // Two targets: the fully camouflaged corpus circuit (vivification
    // territory) and a mixed one with standard gates between the
    // camouflaged ones — the shape where variable elimination actually
    // removes clauses, so the sweep runs over a genuinely rewritten
    // database.
    let (lib, camo, full_circuit, candidates) = any_io_corpus();
    let f = VectorFunction::from_lookup_table(3, 3, &[1, 0, 3, 2, 5, 7, 6, 4]).unwrap();
    let mixed_circuit = mvf_attack::partial_camouflage(&f, &lib, &camo, 3).expect("buildable");
    for circuit in [full_circuit, mixed_circuit] {
        check_inprocess_invisible(&lib, &camo, &circuit, &candidates);
    }
}

fn check_inprocess_invisible(
    lib: &Library,
    camo: &CamoLibrary,
    circuit: &mvf_netlist::Netlist,
    candidates: &[VectorFunction],
) {
    let on = plausibility_sweep_any_io_with(
        circuit,
        lib,
        camo,
        candidates,
        &AnyIoOptions {
            shards: 1,
            inprocess: true,
            ..AnyIoOptions::default()
        },
    );
    let off = plausibility_sweep_any_io_with(
        circuit,
        lib,
        camo,
        candidates,
        &AnyIoOptions {
            shards: 1,
            inprocess: false,
            ..AnyIoOptions::default()
        },
    );
    assert_eq!(on, off, "serial any-IO sweep must not notice inprocessing");
    let key = |vs: &[AnyIoVerdict]| -> Vec<(bool, Option<IoInterpretation>)> {
        vs.iter()
            .map(|v| (v.plausible, v.witness.clone()))
            .collect()
    };
    for shards in [1usize, 2, 4] {
        let sharded = plausibility_sweep_any_io_with(
            circuit,
            lib,
            camo,
            candidates,
            &AnyIoOptions {
                shards,
                inprocess: true,
                ..AnyIoOptions::default()
            },
        );
        assert_eq!(
            key(&on),
            key(&sharded),
            "inprocessed any-IO sweep diverged at {shards} shards"
        );
    }
    // The identity sweep rides the same toggle.
    let id_on = plausibility_sweep_with(
        circuit,
        lib,
        camo,
        candidates,
        &SweepOptions {
            inprocess: true,
            ..SweepOptions::default()
        },
    );
    let id_off = plausibility_sweep_with(
        circuit,
        lib,
        camo,
        candidates,
        &SweepOptions {
            inprocess: false,
            ..SweepOptions::default()
        },
    );
    assert_eq!(id_on, id_off, "identity sweep must not notice inprocessing");
}

/// The screening demo circuit: three camouflaged cells (NAND2(a,b) → y0,
/// INV(c) → y1, AND2(y0,y1) → y2) keep the doping-configuration product
/// at 5 · 3 · 5 = 75 — enumerable, so the screen engages — and three
/// inputs keep the batch complete (every minterm covered), so the screen
/// is exact. Returns the library pair, the netlist and its true function
/// under the look-alike reading.
fn screen_demo() -> (Library, CamoLibrary, mvf_netlist::Netlist, VectorFunction) {
    use mvf_netlist::{CellRef, Netlist};
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    let camo_id = |name: &str| {
        camo.iter()
            .find(|(_, cc)| cc.name() == name)
            .expect("camouflaged cell exists")
            .0
    };
    let mut nl = Netlist::new("screen_demo".to_string());
    let a = nl.add_input("a".to_string());
    let b = nl.add_input("b".to_string());
    let c = nl.add_input("c".to_string());
    let (_, y0) = nl.add_cell(
        "u0".to_string(),
        CellRef::Camo(camo_id("NAND2")),
        vec![a, b],
    );
    let (_, y1) = nl.add_cell("u1".to_string(), CellRef::Camo(camo_id("INV")), vec![c]);
    let (_, y2) = nl.add_cell(
        "u2".to_string(),
        CellRef::Camo(camo_id("AND2")),
        vec![y0, y1],
    );
    nl.add_output("y0".to_string(), y0);
    nl.add_output("y1".to_string(), y1);
    nl.add_output("y2".to_string(), y2);
    let table: Vec<u16> = (0..8u16)
        .map(|m| {
            let (a, b, c) = (m & 1, (m >> 1) & 1, (m >> 2) & 1);
            let y0 = 1 - (a & b);
            let y1 = 1 - c;
            y0 | (y1 << 1) | ((y0 & y1) << 2)
        })
        .collect();
    let truth = VectorFunction::from_lookup_table(3, 3, &table).unwrap();
    (lib, camo, nl, truth)
}

#[test]
fn any_io_screening_never_changes_a_verdict_or_witness() {
    // On the random-camouflage corpus the configuration product exceeds
    // the screening cap, so the screen stands down — the screened path
    // must still be bit-identical to the SAT-only sweep there too.
    let (lib, camo, circuit, candidates) = any_io_corpus();
    let on = plausibility_sweep_any_io(&circuit, &lib, &camo, &candidates);
    let off = plausibility_sweep_any_io_with(
        &circuit,
        &lib,
        &camo,
        &candidates,
        &AnyIoOptions {
            screen: false,
            ..AnyIoOptions::default()
        },
    );
    for (j, (von, voff)) in on.iter().zip(&off).enumerate() {
        assert_eq!(von.plausible, voff.plausible, "candidate {j}: verdict");
        assert_eq!(von.witness, voff.witness, "candidate {j}: witness");
        assert_eq!(
            von.unique, voff.unique,
            "candidate {j}: pruning is screen-independent"
        );
        assert_eq!(von.orbit, voff.orbit, "candidate {j}: orbit size");
    }
    // Screened counts are computed serially up front, so they are
    // deterministic for every shard count (queries may differ — the
    // plausible early exit is cooperative).
    for shards in [2usize, 4] {
        let sharded = plausibility_sweep_any_io_with(
            &circuit,
            &lib,
            &camo,
            &candidates,
            &AnyIoOptions {
                shards,
                ..AnyIoOptions::default()
            },
        );
        for (j, (a, b)) in on.iter().zip(&sharded).enumerate() {
            assert_eq!(
                (a.plausible, &a.witness, a.screened, a.unique, a.orbit),
                (b.plausible, &b.witness, b.screened, b.unique, b.orbit),
                "candidate {j}: shards = {shards}"
            );
        }
    }
}

#[test]
fn complete_screen_matches_brute_force_with_zero_sat_queries() {
    let (lib, camo, nl, truth) = screen_demo();
    let lut3 = |t: &[u16; 8]| VectorFunction::from_lookup_table(3, 3, t).unwrap();
    let candidates = vec![
        truth.clone(),
        // Pin-scrambled copy: plausible with a mid-orbit witness.
        truth
            .permute_inputs(&[2, 0, 1])
            .unwrap()
            .permute_outputs(&[1, 2, 0])
            .unwrap(),
        lut3(&[0, 1, 2, 3, 4, 5, 6, 7]),
        lut3(&[1, 0, 3, 2, 5, 7, 6, 4]),
    ];
    let screen = CamoScreen::build(&nl, &lib, &camo, &candidates, DEFAULT_SCREEN_VECTORS)
        .expect("the 75-configuration product is enumerable");
    assert!(screen.is_complete(), "8 minterms fit in any batch");
    assert_eq!(
        screen.n_vectors(),
        64,
        "minterms cycled up to word granularity"
    );
    let on = plausibility_sweep_any_io(&nl, &lib, &camo, &candidates);
    let off = plausibility_sweep_any_io_with(
        &nl,
        &lib,
        &camo,
        &candidates,
        &AnyIoOptions {
            screen: false,
            ..AnyIoOptions::default()
        },
    );
    for (j, (f, (von, voff))) in candidates.iter().zip(on.iter().zip(&off)).enumerate() {
        let (want, want_witness) = brute_force_any_io(&nl, &lib, &camo, f);
        assert_eq!(von.plausible, want, "candidate {j}: verdict (screen on)");
        assert_eq!(
            von.witness, want_witness,
            "candidate {j}: witness (screen on)"
        );
        assert_eq!(voff.plausible, want, "candidate {j}: verdict (screen off)");
        assert_eq!(
            voff.witness, want_witness,
            "candidate {j}: witness (screen off)"
        );
        // A complete screen is exact: it settles every orbit
        // representative — confirmations and refutations — SAT-free.
        assert_eq!(
            von.queries, 0,
            "candidate {j}: complete screen needs no SAT"
        );
        if von.plausible {
            assert!(
                von.screened >= 1,
                "candidate {j}: the witness was confirmed SAT-free"
            );
        } else {
            assert_eq!(
                von.screened, von.unique,
                "candidate {j}: a refutation covers every representative"
            );
        }
    }
    assert!(on[0].plausible, "the true function is plausible");
    assert!(on[1].plausible, "the scrambled copy is plausible");
    // With every representative settled up front and zero SAT queries,
    // whole verdicts — counters included — are shard-invariant.
    for shards in [2usize, 4] {
        let sharded = plausibility_sweep_any_io_with(
            &nl,
            &lib,
            &camo,
            &candidates,
            &AnyIoOptions {
                shards,
                ..AnyIoOptions::default()
            },
        );
        assert_eq!(on, sharded, "shards = {shards}");
    }
}

#[test]
fn surviving_config_masks_match_exhaustive_enumeration() {
    let (lib, camo, nl, truth) = screen_demo();
    let lut3 = |t: &[u16; 8]| VectorFunction::from_lookup_table(3, 3, t).unwrap();
    let candidates = vec![
        truth,
        lut3(&[0, 1, 2, 3, 4, 5, 6, 7]),
        lut3(&[1, 0, 3, 2, 5, 7, 6, 4]),
        lut3(&[7, 7, 7, 7, 0, 0, 0, 0]),
    ];
    let screen = CamoScreen::build(&nl, &lib, &camo, &candidates, DEFAULT_SCREEN_VECTORS)
        .expect("the 75-configuration product is enumerable");
    assert!(screen.is_complete());
    // Mirror the documented configuration order: camouflaged cells in
    // netlist topological order, the last cell varying fastest, each
    // cell's plausible set in its sorted order.
    let mut cells = Vec::new();
    for cid in nl.topo_cells() {
        if let mvf_netlist::CellRef::Camo(id) = nl.cell(cid).cell {
            cells.push((cid, camo.cell(id).plausible().to_vec()));
        }
    }
    let n_cfg: usize = cells.iter().map(|(_, p)| p.len()).product();
    assert_eq!(n_cfg, 75, "NAND2 x INV x AND2 = 5 * 3 * 5");
    for (j, f) in candidates.iter().enumerate() {
        let mask = screen.survivors(f);
        assert_eq!(
            mask.len(),
            n_cfg,
            "candidate {j}: one mask bit per configuration"
        );
        let mut odometer = vec![0usize; cells.len()];
        for (cfg_idx, &survives) in mask.iter().enumerate() {
            let config: std::collections::HashMap<_, _> = cells
                .iter()
                .zip(&odometer)
                .map(|((cid, p), &d)| (*cid, p[d].clone()))
                .collect();
            let outs = mvf_sim::eval_camo_netlist(&nl, &lib, &camo, &config)
                .expect("enumerated bindings are plausible");
            let agrees = (0..8usize).all(|m| {
                let want = f.eval(m);
                outs.iter()
                    .enumerate()
                    .all(|(o, tt)| tt.get(m) == ((want >> o) & 1 == 1))
            });
            assert_eq!(
                survives, agrees,
                "candidate {j}, configuration {cfg_idx}: the mask must equal \
                 exhaustive per-configuration evaluation"
            );
            // Advance the odometer, last cell fastest.
            let mut pos = cells.len();
            while pos > 0 {
                pos -= 1;
                odometer[pos] += 1;
                if odometer[pos] < cells[pos].1.len() {
                    break;
                }
                odometer[pos] = 0;
            }
        }
        // A complete screen's survivor set is exactly the SAT question:
        // does some configuration realize the candidate?
        assert_eq!(
            mask.iter().any(|&s| s),
            is_plausible(&nl, &lib, &camo, f),
            "candidate {j}: any surviving configuration == identity plausibility"
        );
    }
}

/// A 7-input, 5-camo-cell circuit for the sampling regime: 2^7 = 128
/// minterms exceed a 64-vector batch, so the screen samples (SplitMix64)
/// and can only refute, never confirm. The configuration product
/// 5^5 = 3125 still fits the enumeration cap.
fn sampling_demo() -> (Library, CamoLibrary, mvf_netlist::Netlist, VectorFunction) {
    use mvf_netlist::{CellRef, Netlist};
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    let camo_id = |name: &str| {
        camo.iter()
            .find(|(_, cc)| cc.name() == name)
            .expect("camouflaged cell exists")
            .0
    };
    let mut nl = Netlist::new("sampling_demo".to_string());
    let ins: Vec<_> = ["a", "b", "c", "d", "e", "f", "g"]
        .iter()
        .map(|n| nl.add_input((*n).to_string()))
        .collect();
    let nand2 = camo_id("NAND2");
    let and2 = camo_id("AND2");
    let (_, u0) = nl.add_cell("u0".to_string(), CellRef::Camo(nand2), vec![ins[0], ins[1]]);
    let (_, u1) = nl.add_cell("u1".to_string(), CellRef::Camo(nand2), vec![ins[2], ins[3]]);
    let (_, u2) = nl.add_cell("u2".to_string(), CellRef::Camo(nand2), vec![ins[4], ins[5]]);
    let (_, u3) = nl.add_cell("u3".to_string(), CellRef::Camo(and2), vec![u0, u1]);
    let (_, u4) = nl.add_cell("u4".to_string(), CellRef::Camo(and2), vec![u2, ins[6]]);
    nl.add_output("y0".to_string(), u3);
    nl.add_output("y1".to_string(), u4);
    let table: Vec<u16> = (0..128u16)
        .map(|m| {
            let bit = |i: u16| (m >> i) & 1;
            let y0 = (1 - (bit(0) & bit(1))) & (1 - (bit(2) & bit(3)));
            let y1 = (1 - (bit(4) & bit(5))) & bit(6);
            y0 | (y1 << 1)
        })
        .collect();
    let truth = VectorFunction::from_lookup_table(7, 2, &table).unwrap();
    (lib, camo, nl, truth)
}

#[test]
fn sampling_screen_refutes_chaff_without_changing_verdicts() {
    let (lib, camo, nl, truth) = sampling_demo();
    // A near-miss (one output bit flipped) plus deterministic chaff.
    let near_miss = {
        let mut table: Vec<u16> = (0..128usize).map(|m| truth.eval(m)).collect();
        table[0] ^= 1;
        VectorFunction::from_lookup_table(7, 2, &table).unwrap()
    };
    let mut rng = XorShift(0x5C2E_E45C);
    let mut random_fn = || {
        let table: Vec<u16> = (0..128).map(|_| (rng.next() % 4) as u16).collect();
        VectorFunction::from_lookup_table(7, 2, &table).unwrap()
    };
    let candidates = vec![truth.clone(), near_miss, random_fn(), random_fn()];
    let screen = CamoScreen::build(&nl, &lib, &camo, &candidates, 64)
        .expect("the 5^5 = 3125 configuration product is enumerable");
    assert!(
        !screen.is_complete(),
        "128 minterms exceed the 64-vector batch"
    );
    assert_eq!(screen.n_vectors(), 64);
    let on_opts = SweepOptions {
        screen_vectors: 64,
        ..SweepOptions::default()
    };
    let on = plausibility_sweep_with(&nl, &lib, &camo, &candidates, &on_opts);
    let off = plausibility_sweep_with(
        &nl,
        &lib,
        &camo,
        &candidates,
        &SweepOptions {
            screen: false,
            ..SweepOptions::default()
        },
    );
    for (j, (von, voff)) in on.iter().zip(&off).enumerate() {
        assert_eq!(von.plausible, voff.plausible, "candidate {j}: verdict");
        assert!(!voff.screened, "screen off never screens");
    }
    assert!(on[0].plausible, "the true function is plausible");
    assert!(
        !on[0].screened,
        "a sampling screen never confirms — the true function goes to SAT"
    );
    assert!(
        on[2].screened && on[3].screened && !on[2].plausible && !on[3].plausible,
        "the deterministic batch refutes random chaff SAT-free"
    );
    // Sharded identity sweeps with sampling screening stay bit-identical.
    for shards in [2usize, 4] {
        let sharded = plausibility_sweep_with(
            &nl,
            &lib,
            &camo,
            &candidates,
            &SweepOptions {
                shards,
                screen_vectors: 64,
                ..SweepOptions::default()
            },
        );
        assert_eq!(on, sharded, "shards = {shards}");
    }
    // Any-IO through the sampling screen: an early-witness candidate
    // (outputs swapped — witness at orbit index 1) must report the same
    // verdict and witness with and without screening.
    let swapped = truth.permute_outputs(&[1, 0]).unwrap();
    let von = plausibility_sweep_any_io_with(
        &nl,
        &lib,
        &camo,
        std::slice::from_ref(&swapped),
        &AnyIoOptions {
            screen_vectors: 64,
            ..AnyIoOptions::default()
        },
    );
    let voff = plausibility_sweep_any_io_with(
        &nl,
        &lib,
        &camo,
        std::slice::from_ref(&swapped),
        &AnyIoOptions {
            screen: false,
            ..AnyIoOptions::default()
        },
    );
    assert!(von[0].plausible && voff[0].plausible);
    assert_eq!(
        von[0].witness, voff[0].witness,
        "witness is screen-independent"
    );
    assert_eq!(
        von[0].witness,
        Some(IoInterpretation::from_perms(
            vec![0, 1, 2, 3, 4, 5, 6],
            vec![1, 0]
        )),
        "identity inputs, swapped outputs"
    );
}
