//! Randomized property tests over the core invariants:
//!
//! * synthesis scripts never change circuit functions;
//! * plain mapping preserves semantics for arbitrary functions;
//! * camouflage mapping of arbitrary 2-function merges keeps every
//!   function realizable;
//! * pin permutations round-trip;
//! * camouflaged-cell plausible sets are closed under doping.
//!
//! The cases are drawn from a seeded [`StdRng`], so every run checks the
//! same deterministic sample (no external property-testing framework is
//! needed and failures reproduce exactly).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mvf_aig::{build, Aig, Lit, Script};
use mvf_cells::{CamoLibrary, Library};
use mvf_logic::{TruthTable, VectorFunction};
use mvf_merge::{build_merged, PinAssignment};
use mvf_netlist::subject_graph;
use mvf_techmap::{map_camouflage, map_standard, CamoMapOptions, MapOptions};

const CASES: usize = 24;

fn random_vecfunc(rng: &mut StdRng, n_in: usize, n_out: usize) -> VectorFunction {
    let table: Vec<u16> = (0..1usize << n_in)
        .map(|_| rng.gen_range(0..1u16 << n_out))
        .collect();
    VectorFunction::from_lookup_table(n_in, n_out, &table).expect("valid table")
}

fn random_perm(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        p.swap(i, j);
    }
    p
}

fn aig_of(f: &VectorFunction, n_in: usize, n_out: usize) -> Aig {
    let mut aig = Aig::new(n_in);
    let leaves: Vec<Lit> = (0..n_in).map(|i| aig.input(i)).collect();
    for o in 0..n_out {
        let lit = build::tt_to_aig(&mut aig, f.output(o), &leaves);
        aig.add_output(format!("o{o}"), lit);
    }
    aig
}

#[test]
fn synthesis_preserves_random_functions() {
    let mut rng = StdRng::seed_from_u64(0x51D_0001);
    for case in 0..CASES {
        let f = random_vecfunc(&mut rng, 5, 3);
        let aig = aig_of(&f, 5, 3);
        let out = Script::standard().run(&aig);
        assert!(out.equivalent(&aig), "case {case}: function changed");
        assert!(out.n_ands() <= aig.n_ands(), "case {case}: graph grew");
    }
}

#[test]
fn plain_mapping_preserves_random_functions() {
    let mut rng = StdRng::seed_from_u64(0x51D_0002);
    let lib = Library::standard();
    for case in 0..CASES {
        let f = random_vecfunc(&mut rng, 4, 2);
        let aig = aig_of(&f, 4, 2);
        let subject = subject_graph::from_aig(&aig, &lib);
        let mapped = map_standard(&subject, &lib, &MapOptions::default()).unwrap();
        let outs = mvf_sim::eval_netlist(&mapped, &lib);
        assert_eq!(outs, aig.output_functions(), "case {case}");
    }
}

#[test]
fn camo_flow_realizes_random_function_pairs() {
    let mut rng = StdRng::seed_from_u64(0x51D_0003);
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    for case in 0..CASES {
        let functions = vec![
            random_vecfunc(&mut rng, 3, 2),
            random_vecfunc(&mut rng, 3, 2),
        ];
        let merged = build_merged(&functions, &PinAssignment::identity(&functions)).unwrap();
        let synthesized = Script::fast().run(&merged.aig);
        let subject = subject_graph::from_aig(&synthesized, &lib);
        let mapped = map_camouflage(
            &subject,
            &lib,
            &camo,
            &merged.select_indices,
            &CamoMapOptions::default(),
        )
        .unwrap();
        assert!(mapped.netlist.inputs().len() <= 3, "case {case}");
        mvf_sim::validate_mapped(&mapped, &lib, &camo, &merged.functions)
            .unwrap_or_else(|e| panic!("case {case}: viable function lost: {e}"));
    }
}

#[test]
fn input_permutation_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x51D_0004);
    for case in 0..CASES {
        let f = random_vecfunc(&mut rng, 4, 4);
        let perm = random_perm(&mut rng, 4);
        let g = f.permute_inputs(&perm).unwrap();
        let mut inv = vec![0usize; 4];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        assert_eq!(
            g.permute_inputs(&inv).unwrap(),
            f,
            "case {case}: perm {perm:?}"
        );
    }
}

#[test]
fn isop_exact_on_random_tables() {
    let mut rng = StdRng::seed_from_u64(0x51D_0005);
    for case in 0..CASES {
        let bits: u64 = rng.gen();
        let tt = TruthTable::from_word(6, bits).unwrap();
        let cover = mvf_logic::isop(&tt, &tt);
        assert_eq!(cover.to_truth_table(), tt, "case {case}: bits {bits:#x}");
    }
}

#[test]
fn npn_canonical_is_class_invariant() {
    let mut rng = StdRng::seed_from_u64(0x51D_0006);
    for case in 0..CASES {
        let bits: u16 = rng.gen();
        let f = TruthTable::from_word(4, bits as u64).unwrap();
        let (canon, t) = mvf_logic::npn::npn_canonical(&f);
        assert_eq!(
            t.apply(&f),
            canon,
            "case {case}: transform must reach canon"
        );
        // Applying any further transform keeps the canonical form.
        let g = f.flip_var(2).permute(&[3, 1, 0, 2]).unwrap().not();
        assert_eq!(mvf_logic::npn::npn_canonical(&g).0, canon, "case {case}");
    }
}

#[test]
fn camo_library_doping_closure_exhaustive() {
    // Deterministic exhaustive check: for every camouflaged cell, the
    // image of the 3^k doping space equals the plausible set.
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    for (_, cell) in camo.iter() {
        let k = cell.n_inputs();
        let states = [
            mvf_cells::PinState::Active,
            mvf_cells::PinState::Stuck0,
            mvf_cells::PinState::Stuck1,
        ];
        let mut image = std::collections::BTreeSet::new();
        for code in 0..3usize.pow(k as u32) {
            let mut c = code;
            let config: Vec<_> = (0..k)
                .map(|_| {
                    let s = states[c % 3];
                    c /= 3;
                    s
                })
                .collect();
            image.insert(cell.config_function(&config));
        }
        let plausible: std::collections::BTreeSet<_> = cell.plausible().iter().cloned().collect();
        assert_eq!(
            image,
            plausible,
            "doping image mismatch for {}",
            cell.name()
        );
    }
}
