//! Property-based tests over the core invariants:
//!
//! * synthesis scripts never change circuit functions;
//! * plain mapping preserves semantics for arbitrary functions;
//! * camouflage mapping of arbitrary 2-function merges keeps every
//!   function realizable;
//! * pin permutations round-trip;
//! * camouflaged-cell plausible sets are closed under doping.

use proptest::prelude::*;

use mvf_aig::{build, Aig, Lit, Script};
use mvf_cells::{CamoLibrary, Library};
use mvf_logic::{TruthTable, VectorFunction};
use mvf_merge::{build_merged, PinAssignment};
use mvf_netlist::subject_graph;
use mvf_techmap::{map_camouflage, map_standard, CamoMapOptions, MapOptions};

fn vecfunc_strategy(n_in: usize, n_out: usize) -> impl Strategy<Value = VectorFunction> {
    proptest::collection::vec(0u16..(1 << n_out), 1 << n_in)
        .prop_map(move |table| VectorFunction::from_lookup_table(n_in, n_out, &table).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn synthesis_preserves_random_functions(f in vecfunc_strategy(5, 3)) {
        let mut aig = Aig::new(5);
        let leaves: Vec<Lit> = (0..5).map(|i| aig.input(i)).collect();
        for o in 0..3 {
            let lit = build::tt_to_aig(&mut aig, f.output(o), &leaves);
            aig.add_output(format!("o{o}"), lit);
        }
        let out = Script::standard().run(&aig);
        prop_assert!(out.equivalent(&aig));
        prop_assert!(out.n_ands() <= aig.n_ands());
    }

    #[test]
    fn plain_mapping_preserves_random_functions(f in vecfunc_strategy(4, 2)) {
        let mut aig = Aig::new(4);
        let leaves: Vec<Lit> = (0..4).map(|i| aig.input(i)).collect();
        for o in 0..2 {
            let lit = build::tt_to_aig(&mut aig, f.output(o), &leaves);
            aig.add_output(format!("o{o}"), lit);
        }
        let lib = Library::standard();
        let subject = subject_graph::from_aig(&aig, &lib);
        let mapped = map_standard(&subject, &lib, &MapOptions::default()).unwrap();
        let outs = mvf_sim::eval_netlist(&mapped, &lib);
        prop_assert_eq!(outs, aig.output_functions());
    }

    #[test]
    fn camo_flow_realizes_random_function_pairs(
        f0 in vecfunc_strategy(3, 2),
        f1 in vecfunc_strategy(3, 2),
    ) {
        let functions = vec![f0, f1];
        let merged = build_merged(&functions, &PinAssignment::identity(&functions)).unwrap();
        let synthesized = Script::fast().run(&merged.aig);
        let lib = Library::standard();
        let camo = CamoLibrary::from_library(&lib);
        let subject = subject_graph::from_aig(&synthesized, &lib);
        let mapped = map_camouflage(
            &subject,
            &lib,
            &camo,
            &merged.select_indices,
            &CamoMapOptions::default(),
        ).unwrap();
        prop_assert!(mapped.netlist.inputs().len() <= 3);
        mvf_sim::validate_mapped(&mapped, &lib, &camo, &merged.functions)
            .expect("every viable function realizable");
    }

    #[test]
    fn input_permutation_roundtrip(
        f in vecfunc_strategy(4, 4),
        perm in Just((0..4usize).collect::<Vec<_>>()).prop_shuffle(),
    ) {
        let g = f.permute_inputs(&perm).unwrap();
        let mut inv = vec![0usize; 4];
        for (i, &p) in perm.iter().enumerate() { inv[p] = i; }
        prop_assert_eq!(g.permute_inputs(&inv).unwrap(), f);
    }

    #[test]
    fn isop_exact_on_random_tables(bits in any::<u64>()) {
        let tt = TruthTable::from_word(6, bits).unwrap();
        let cover = mvf_logic::isop(&tt, &tt);
        prop_assert_eq!(cover.to_truth_table(), tt);
    }

    #[test]
    fn npn_canonical_is_class_invariant(bits in any::<u16>()) {
        let f = TruthTable::from_word(4, bits as u64).unwrap();
        let (canon, t) = mvf_logic::npn::npn_canonical(&f);
        prop_assert_eq!(t.apply(&f), canon.clone());
        // Applying any further transform keeps the canonical form.
        let g = f.flip_var(2).permute(&[3, 1, 0, 2]).unwrap().not();
        prop_assert_eq!(mvf_logic::npn::npn_canonical(&g).0, canon);
    }
}

#[test]
fn camo_library_doping_closure_exhaustive() {
    // Deterministic (non-proptest) exhaustive check: for every camouflaged
    // cell, the image of the 3^k doping space equals the plausible set.
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    for (_, cell) in camo.iter() {
        let k = cell.n_inputs();
        let states = [
            mvf_cells::PinState::Active,
            mvf_cells::PinState::Stuck0,
            mvf_cells::PinState::Stuck1,
        ];
        let mut image = std::collections::BTreeSet::new();
        for code in 0..3usize.pow(k as u32) {
            let mut c = code;
            let config: Vec<_> = (0..k)
                .map(|_| {
                    let s = states[c % 3];
                    c /= 3;
                    s
                })
                .collect();
            image.insert(cell.config_function(&config));
        }
        let plausible: std::collections::BTreeSet<_> =
            cell.plausible().iter().cloned().collect();
        assert_eq!(image, plausible, "doping image mismatch for {}", cell.name());
    }
}
