//! Contract tests for the workload-oriented pipeline API:
//!
//! * the `Ga` strategy reproduces the PR-1 closure-quadruple GA plumbing
//!   **bit-identically** on a fixed seed;
//! * `Flow::run_many` over eight two-function S-box workloads is
//!   deterministic and equals the per-workload serial runs;
//! * failed fitness evaluations are counted (and zero in healthy runs).

use mvf::{synthesized_area_ge, Flow, Ga, Workload};
use mvf_ga::permutation::{pmx, random_permutation, swap_mutation};
use mvf_ga::{GaConfig, GeneticAlgorithm};
use mvf_merge::PinAssignment;
use mvf_sboxes::optimal_sboxes;
use rand::rngs::StdRng;
use rand::Rng;

/// The PR-1 closure plumbing, frozen here as the reference
/// implementation: ad-hoc init/mutate/crossover closures wired straight
/// into the GA engine, with a cold fitness call per evaluation.
fn pr1_closure_ga(
    functions: &[mvf_logic::VectorFunction],
    cfg: GaConfig,
) -> mvf_ga::GaResult<PinAssignment> {
    let flow_cfg = mvf::FlowConfig::default();
    let lib = mvf_cells::Library::standard();
    let engine = GeneticAlgorithm::new(cfg);
    engine.run(
        |rng| PinAssignment {
            input_perms: functions
                .iter()
                .map(|f| random_permutation(f.n_inputs(), rng))
                .collect(),
            output_perms: functions
                .iter()
                .map(|f| random_permutation(f.n_outputs(), rng))
                .collect(),
        },
        |g: &mut PinAssignment, rng: &mut StdRng| {
            let j = rng.gen_range(0..g.input_perms.len());
            if rng.gen_bool(0.5) {
                swap_mutation(&mut g.input_perms[j], rng);
            } else {
                swap_mutation(&mut g.output_perms[j], rng);
            }
        },
        |a: &PinAssignment, b: &PinAssignment, rng: &mut StdRng| {
            let input_perms = a
                .input_perms
                .iter()
                .zip(&b.input_perms)
                .map(|(x, y)| {
                    if rng.gen_bool(0.5) {
                        pmx(x, y, rng)
                    } else {
                        x.clone()
                    }
                })
                .collect();
            let output_perms = a
                .output_perms
                .iter()
                .zip(&b.output_perms)
                .map(|(x, y)| {
                    if rng.gen_bool(0.5) {
                        pmx(x, y, rng)
                    } else {
                        x.clone()
                    }
                })
                .collect();
            PinAssignment {
                input_perms,
                output_perms,
            }
        },
        |g: &PinAssignment| {
            synthesized_area_ge(functions, g, &flow_cfg.script, &lib, &flow_cfg.map)
                .unwrap_or(f64::INFINITY)
        },
    )
}

#[test]
fn ga_strategy_is_bit_identical_to_pr1_closure_path() {
    let functions = optimal_sboxes()[..2].to_vec();
    let cfg = GaConfig {
        population: 6,
        generations: 2,
        seed: 0x1DEA,
        ..GaConfig::default()
    };

    let reference = pr1_closure_ga(&functions, cfg.clone());
    let flow = Flow::builder().ga(cfg).validate(false).build();
    let result = flow.run(&functions).expect("flow succeeds");

    assert_eq!(
        result.assignment, reference.best_genome,
        "strategy path found a different winning assignment"
    );
    assert_eq!(result.evaluations, reference.evaluations);
    assert_eq!(result.ga_history.len(), reference.history.len());
    for (g, (a, b)) in result.ga_history.iter().zip(&reference.history).enumerate() {
        assert_eq!(a.best_so_far.to_bits(), b.best_so_far.to_bits(), "gen {g}");
        assert_eq!(a.best.to_bits(), b.best.to_bits(), "gen {g}");
        assert_eq!(a.avg.to_bits(), b.avg.to_bits(), "gen {g}");
    }
    assert_eq!(result.failed_evaluations, 0);
}

/// Eight two-function S-box workloads: the 16 optimal S-boxes paired up.
fn eight_pair_workloads() -> Vec<Workload> {
    let sboxes = optimal_sboxes();
    (0..8)
        .map(|i| {
            Workload::new(
                format!("PRESENT pair {i}"),
                sboxes[2 * i..2 * i + 2].to_vec(),
            )
        })
        .collect()
}

fn batch_flow() -> Flow<Ga> {
    Flow::builder()
        .ga(GaConfig {
            population: 4,
            generations: 1,
            seed: 0xBA7C4,
            ..GaConfig::default()
        })
        .validate(false)
        .build()
}

#[test]
fn run_many_is_deterministic_and_matches_serial_runs() {
    let workloads = eight_pair_workloads();
    let flow = batch_flow();

    let batch = flow.run_many(&workloads);
    assert_eq!(batch.len(), workloads.len());

    // Identical on repeat.
    let again = flow.run_many(&workloads);
    for (a, b) in batch.iter().zip(&again) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.seed, b.seed);
        let (ra, rb) = (
            a.result().expect("flow succeeds"),
            b.result().expect("flow succeeds"),
        );
        assert_eq!(ra.assignment, rb.assignment);
        assert_eq!(
            ra.synthesized_area_ge.to_bits(),
            rb.synthesized_area_ge.to_bits()
        );
        assert_eq!(ra.mapped_area_ge.to_bits(), rb.mapped_area_ge.to_bits());
    }

    // Batch result == per-workload serial result under the same seed.
    for (w, report) in workloads.iter().zip(&batch) {
        let serial = flow
            .run_seeded(&w.functions, report.seed)
            .expect("serial flow succeeds");
        let batched = report.result().expect("flow succeeds");
        assert_eq!(report.strategy, "ga");
        assert_eq!(batched.assignment, serial.assignment, "{}", w.name);
        assert_eq!(
            batched.synthesized_area_ge.to_bits(),
            serial.synthesized_area_ge.to_bits(),
            "{}",
            w.name
        );
        assert_eq!(
            batched.mapped_area_ge.to_bits(),
            serial.mapped_area_ge.to_bits(),
            "{}",
            w.name
        );
        assert_eq!(batched.evaluations, serial.evaluations);
        assert_eq!(batched.failed_evaluations, 0);
    }

    // Distinct workloads get decorrelated seeds.
    let mut seeds: Vec<u64> = batch.iter().map(|r| r.seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), batch.len(), "per-workload seeds must differ");
}

#[test]
fn workload_seed_overrides_are_honored() {
    let sboxes = optimal_sboxes();
    let workloads = vec![
        Workload::new("pinned", sboxes[..2].to_vec()).with_seed(0xAB),
        Workload::new("derived", sboxes[2..4].to_vec()),
    ];
    let flow = batch_flow();
    let reports = flow.run_many(&workloads);
    assert_eq!(reports[0].seed, 0xAB);
    let direct = flow
        .run_seeded(&workloads[0].functions, 0xAB)
        .expect("flow succeeds");
    assert_eq!(
        reports[0].result().expect("flow succeeds").assignment,
        direct.assignment
    );
}

#[test]
fn workload_parallelism_does_not_change_reports() {
    let workloads = eight_pair_workloads()[..4].to_vec();
    let serial_flow = Flow::builder()
        .ga(GaConfig {
            population: 4,
            generations: 1,
            seed: 0x5E7,
            ..GaConfig::default()
        })
        .validate(false)
        .workload_threads(1)
        .build();
    let parallel_flow = Flow::builder()
        .ga(GaConfig {
            population: 4,
            generations: 1,
            seed: 0x5E7,
            ..GaConfig::default()
        })
        .validate(false)
        .workload_threads(4)
        .build();
    let serial = serial_flow.run_many(&workloads);
    let parallel = parallel_flow.run_many(&workloads);
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.seed, b.seed);
        let (ra, rb) = (
            a.result().expect("flow succeeds"),
            b.result().expect("flow succeeds"),
        );
        assert_eq!(ra.assignment, rb.assignment);
        assert_eq!(
            ra.synthesized_area_ge.to_bits(),
            rb.synthesized_area_ge.to_bits()
        );
    }
}
