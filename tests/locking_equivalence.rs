//! Logic-locking corpus: the scheme-generic attack layer against
//! brute-force key enumeration.
//!
//! Camouflage has `tests/sat_equivalence.rs` pinning every sweep to a
//! brute-force enumeration of doping configurations. This file is the
//! same contract for the second obfuscation family: on locked circuits
//! produced by the real flow, the identity sweep and the any-IO sweep
//! (verdicts AND witnesses) must agree exactly with enumerating the
//! key space — every key value, evaluate, compare — and must be
//! invariant to shard count and to the SAT-free screen.

use mvf::{Flow, FlowResult, Ga, LockOptions, SchemeKind, Workload};
use mvf_attack::{
    plausibility_sweep_any_io_in, plausibility_sweep_in, AnyIoOptions, AnyIoVerdict, SweepOptions,
};
use mvf_ga::GaConfig;
use mvf_logic::{TruthTable, VectorFunction};
use mvf_sboxes::optimal_sboxes;
use mvf_serve::wire::encode_report_in;
use mvf_serve::{audit, run_audit, AuditOutcome, Checkpoint, Control, ServeConfig};

/// A locking flow over two PRESENT S-boxes, small enough to enumerate
/// the full key space in-test.
fn locked_flow(seed: u64) -> (Flow<Ga>, FlowResult) {
    let functions = optimal_sboxes()[..2].to_vec();
    let flow = Flow::builder()
        .ga(GaConfig {
            population: 4,
            generations: 1,
            seed,
            ..GaConfig::default()
        })
        .scheme(SchemeKind::Locking)
        .lock_options(LockOptions {
            n_xor: 3,
            n_mux: 1,
            ..LockOptions::default()
        })
        .build();
    let result = flow.run(&functions).expect("locking flow succeeds");
    (flow, result)
}

/// Every function the locked netlist can compute, one entry per key
/// value (`2^key_bits` total), in key-counter order.
fn functions_by_key(flow: &Flow<Ga>, result: &FlowResult) -> Vec<Vec<TruthTable>> {
    let locked = result.locked.as_ref().expect("locking flow carries a key");
    let nl = &result.mapped.netlist;
    let bits = locked.key_bits();
    assert!(bits <= 16, "key space too large to enumerate in-test");
    (0..1usize << bits)
        .map(|k| {
            let key: Vec<bool> = (0..bits).map(|b| (k >> b) & 1 == 1).collect();
            mvf::sim::eval_camo_netlist(
                nl,
                flow.library(),
                flow.choice_library(),
                &locked.config_for_key(&key),
            )
            .expect("every key value is a valid configuration")
        })
        .collect()
}

fn computes(per_key: &[Vec<TruthTable>], candidate: &VectorFunction) -> bool {
    per_key.iter().any(|outs| outs == candidate.outputs())
}

#[test]
fn identity_sweep_equals_key_enumeration() {
    let (flow, result) = locked_flow(11);
    let space = flow.obfuscation_space();
    let nl = &result.mapped.netlist;
    let per_key = functions_by_key(&flow, &result);
    // Candidates: the two viable functions (plausible by construction)
    // plus decoys that no key can reach.
    let mut candidates = result.merged.functions.clone();
    candidates.extend(optimal_sboxes()[2..5].iter().cloned());
    let verdicts = plausibility_sweep_in(&space, nl, &candidates, &SweepOptions::default());
    assert_eq!(verdicts.len(), candidates.len());
    for (candidate, verdict) in candidates.iter().zip(&verdicts) {
        assert_eq!(
            verdict.plausible,
            computes(&per_key, candidate),
            "identity sweep disagrees with brute-force key enumeration"
        );
    }
    assert!(verdicts[0].plausible && verdicts[1].plausible);
    // The sweep quantifies over exactly the key space: the config
    // odometer and the key counter enumerate the same set.
    let configs = space
        .enumerate_configs(nl, 1 << 16)
        .expect("config product fits the cap");
    assert_eq!(configs.len(), per_key.len());
}

#[test]
fn any_io_sweep_matches_key_enumeration_with_witnesses() {
    let (flow, result) = locked_flow(12);
    let space = flow.obfuscation_space();
    let nl = &result.mapped.netlist;
    let per_key = functions_by_key(&flow, &result);
    let candidates = result.merged.functions.clone();
    let verdicts = plausibility_sweep_any_io_in(&space, nl, &candidates, &AnyIoOptions::default());
    for (candidate, verdict) in candidates.iter().zip(&verdicts) {
        assert!(verdict.plausible, "viable functions stay plausible");
        let witness = verdict
            .witness
            .as_ref()
            .expect("plausible verdicts carry a witness");
        let transformed = witness.apply(candidate).expect("witness shapes match");
        assert!(
            computes(&per_key, &transformed),
            "the witness interpretation must be realized by some key value"
        );
    }
}

#[test]
fn locking_sweeps_are_shard_and_screen_invariant() {
    let (flow, result) = locked_flow(13);
    let space = flow.obfuscation_space();
    let nl = &result.mapped.netlist;
    let mut candidates = result.merged.functions.clone();
    candidates.push(optimal_sboxes()[6].clone());
    let sweep = |shards: usize, screen: bool| -> Vec<AnyIoVerdict> {
        plausibility_sweep_any_io_in(
            &space,
            nl,
            &candidates,
            &AnyIoOptions {
                shards,
                screen,
                ..AnyIoOptions::default()
            },
        )
    };
    let want = sweep(1, true);
    for shards in [2, 4] {
        assert_eq!(sweep(shards, true), want, "shards={shards} diverged");
    }
    // Screen off: verdicts and witnesses identical; only the screen and
    // query counters move.
    let unscreened = sweep(1, false);
    for (a, b) in want.iter().zip(&unscreened) {
        assert_eq!(a.plausible, b.plausible);
        assert_eq!(a.witness, b.witness);
        assert_eq!(a.orbit, b.orbit);
        assert_eq!(a.unique, b.unique);
        assert_eq!(b.screened, 0, "screen off settles nothing");
    }
}

#[test]
fn flow_validation_covers_every_select_key() {
    // `validate: true` (the default) already ran inside `locked_flow`;
    // re-check here against an independent evaluation so the corpus does
    // not depend on the flow's own validator.
    let (flow, result) = locked_flow(14);
    let locked = result.locked.as_ref().unwrap();
    let nl = &result.mapped.netlist;
    for (j, f) in result.merged.functions.iter().enumerate() {
        let key = locked.key_for_select(j);
        let outs = mvf::sim::eval_camo_netlist(
            nl,
            flow.library(),
            flow.choice_library(),
            &locked.config_for_key(&key),
        )
        .unwrap();
        assert_eq!(&outs, f.outputs(), "select key {j} computes function {j}");
    }
}

// ---------------------------------------------------------------------------
// Serve: kill/resume of a locking audit

fn locking_cfg() -> ServeConfig {
    let mut cfg = ServeConfig::default();
    cfg.flow.ga.population = 4;
    cfg.flow.ga.generations = 3;
    cfg.checkpoint_steps = 1;
    cfg.sweep_chunk = 5;
    cfg.attack_screen = false;
    cfg.scheme = SchemeKind::Locking;
    cfg.lock = LockOptions {
        n_xor: 3,
        n_mux: 1,
        ..LockOptions::default()
    };
    cfg
}

const SEED: u64 = 0x10CA;

fn encode(cfg: &ServeConfig, report: &mvf::WorkloadReport) -> String {
    let lib = mvf::cells::Library::standard();
    let lock = mvf::lock_library(&lib);
    let space = mvf::ObfuscationSpace::with_kind(cfg.scheme, &lib, &lock);
    encode_report_in(&space, report).to_string()
}

#[test]
fn locking_audit_killed_at_every_boundary_resumes_bit_identically() {
    let cfg = locking_cfg();
    let w = Workload::new("PRESENT x2 locked", optimal_sboxes()[..2].to_vec());
    let mut boundaries: Vec<String> = Vec::new();
    let reference = match run_audit(&cfg, &w, SEED, None, &mut |cp| {
        boundaries.push(cp.to_json());
        Control::Continue
    }) {
        AuditOutcome::Finished { report, .. } => *report,
        AuditOutcome::Paused(_) => unreachable!(),
    };
    let want = encode(&cfg, &reference);
    assert!(want.contains("\"scheme\":\"locking\""));
    assert!(
        boundaries.len() >= 3,
        "expected mid-GA and mid-sweep boundaries, got {}",
        boundaries.len()
    );
    // The service's current scheme knob must NOT matter on resume: the
    // checkpoint carries the family.
    let mut camo_cfg = cfg.clone();
    camo_cfg.scheme = SchemeKind::Camouflage;
    for (i, serialized) in boundaries.iter().enumerate() {
        assert!(serialized.contains("\"scheme\":\"locking\""));
        let cp = Checkpoint::from_json(serialized).expect("boundary checkpoint parses");
        assert_eq!(cp.scheme, SchemeKind::Locking);
        let resumed = match mvf_serve::resume_audit(&camo_cfg, cp, None, &mut |_| Control::Continue)
        {
            AuditOutcome::Finished { report, .. } => *report,
            AuditOutcome::Paused(_) => unreachable!(),
        };
        assert_eq!(
            encode(&cfg, &resumed),
            want,
            "resume from boundary {i}/{} diverged",
            boundaries.len()
        );
    }
}

#[test]
fn locking_audit_matches_run_many() {
    let cfg = locking_cfg();
    let w = Workload::new("PRESENT x2 locked", optimal_sboxes()[..2].to_vec()).with_seed(SEED);
    let report = audit(&cfg, &w, SEED, None);
    let flow = Flow::builder()
        .config(cfg.flow.clone())
        .scheme(cfg.scheme)
        .lock_options(cfg.lock)
        .workload_threads(1)
        .attack_sweep(true)
        .attack_interpretation_freedom(true)
        .attack_screen(cfg.attack_screen)
        .attack_npn(cfg.attack_npn)
        .attack_class_share(cfg.attack_class_share)
        .attack_shards(1)
        .build();
    let batch = flow.run_many(std::slice::from_ref(&w));
    assert_eq!(
        encode(&cfg, &report),
        encode(&cfg, &batch[0]),
        "the stepped locking audit must reproduce the batch report exactly"
    );
}
