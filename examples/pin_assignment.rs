//! Reproduces the point of **Fig. 3**: pin assignment changes how much
//! logic two merged functions can share.
//!
//! The paper's example merges `f0 = (AB + CD)·E` with `f1 = (FG + HI) + J`.
//! With a good input placement the `(xy + zw)` core is shared; with a bad
//! placement it is not, and the synthesized area grows. The example also
//! runs a tiny GA to find a good placement automatically.
//!
//! ```sh
//! cargo run --release --example pin_assignment
//! ```

use mvf::{EvalContext, FlowConfig};
use mvf_cells::Library;
use mvf_ga::GaConfig;
use mvf_logic::{TruthTable, VectorFunction};
use mvf_merge::PinAssignment;

fn paper_functions() -> Vec<VectorFunction> {
    // Five inputs each: f0 over (A,B,C,D,E), f1 over (F,G,H,I,J).
    let v = |i: usize| TruthTable::var(i, 5);
    let f0 = v(0).and(&v(1)).or(&v(2).and(&v(3))).and(&v(4));
    let f1 = v(0).and(&v(1)).or(&v(2).and(&v(3))).or(&v(4));
    vec![
        VectorFunction::new(5, vec![f0]),
        VectorFunction::new(5, vec![f1]),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let functions = paper_functions();
    let cfg = FlowConfig::default();
    let lib = Library::standard();
    // One evaluation context serves every fitness call in this example.
    let mut ctx = EvalContext::new();

    // Fig. 3a: aligned placement — A/F, B/G, C/H, D/I, E/J share the core.
    let good = PinAssignment::identity(&functions);
    let good_area = ctx.synthesized_area_ge(&functions, &good, &cfg.script, &lib, &cfg.map)?;

    // Fig. 3b: scrambled placement for f1 breaks the shared core.
    let mut bad = PinAssignment::identity(&functions);
    bad.input_perms[1] = vec![2, 0, 1, 3, 4]; // F→wire2, G→wire0, H→wire1
    let bad_area = ctx.synthesized_area_ge(&functions, &bad, &cfg.script, &lib, &cfg.map)?;

    println!("Fig. 3 — input placement vs. logic sharing");
    println!("  effective placement (Fig. 3a): {good_area:>6.1} GE");
    println!("  ineffective placement (Fig. 3b): {bad_area:>4.1} GE");
    assert!(
        good_area <= bad_area,
        "aligned placement must not be worse than the scrambled one"
    );

    // Phase II automates the choice: a tiny GA starting from random
    // placements rediscovers a good one.
    let flow = mvf::Flow::builder()
        .ga(GaConfig {
            population: 8,
            generations: 8,
            ..GaConfig::default()
        })
        .build();
    let result = flow.run(&functions)?;
    println!(
        "  GA-found placement:           {:>6.1} GE (after {} evaluations)",
        result.synthesized_area_ge, result.evaluations
    );
    println!(
        "  camouflage-mapped (GA+TM):    {:>6.1} GE",
        result.mapped_area_ge
    );
    Ok(())
}
