//! Reproduces **Fig. 1b**: the truth table of all functions a camouflaged
//! 2-input NAND can realize via doping, and the plausible sets of the rest
//! of the camouflaged library.
//!
//! ```sh
//! cargo run --release --example camo_cells
//! ```

use mvf_cells::{CamoLibrary, Library};

fn main() {
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);

    let nand2 = camo.cell_by_name("NAND2").expect("NAND2 present");
    println!("Fig. 1b — plausible functions of a camouflaged NAND2:");
    print!("{:>4} {:>4} |", "A", "B");
    for (i, _) in nand2.plausible().iter().enumerate() {
        print!(" {:>4}", format!("f{i}"));
    }
    println!();
    println!("{}", "-".repeat(11 + 5 * nand2.plausible().len()));
    for m in 0..4usize {
        print!("{:>4} {:>4} |", m & 1, (m >> 1) & 1);
        for f in nand2.plausible() {
            print!(" {:>4}", f.get(m) as u8);
        }
        println!();
    }
    println!();
    for (i, f) in nand2.plausible().iter().enumerate() {
        println!("  f{i} = {f:?}");
    }

    println!("\nPlausible-set sizes across the camouflaged library:");
    println!("{:<8} {:>7} {:>16}", "cell", "pins", "plausible fns");
    for (_, cell) in camo.iter() {
        println!(
            "{:<8} {:>7} {:>16}",
            cell.name(),
            cell.n_inputs(),
            cell.plausible().len()
        );
    }

    // Every plausible function has a concrete doping configuration.
    let f = &nand2.plausible()[1];
    let cfg = nand2.config_for(f).expect("config exists");
    println!("\nExample doping for {f:?}: {cfg:?}");
}
