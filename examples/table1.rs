//! Regenerates the paper's **Table I** as a standalone binary (the
//! Criterion bench `table1` does the same inside `cargo bench`).
//!
//! ```sh
//! cargo run --release --example table1                  # quick budget
//! MVF_PAPER_SCALE=1 cargo run --release --example table1  # paper budget
//! ```
//!
//! Budget knobs: `MVF_GA_POP`, `MVF_GA_GENS`, `MVF_PAPER_SCALE=1`
//! (population 24, generations 442 ⇒ 9750 evaluations ≈ the paper's 9726).

use mvf::{Flow, FlowConfig, Table1, Table1Row};
use mvf_ga::GeneticAlgorithm;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = FlowConfig::default();
    if std::env::var_os("MVF_PAPER_SCALE").is_some() {
        config.ga.population = 24;
        config.ga.generations = 442;
    } else {
        config.ga.population = env_usize("MVF_GA_POP", 10);
        config.ga.generations = env_usize("MVF_GA_GENS", 8);
    }
    let flow = Flow::new(config);
    let budget = GeneticAlgorithm::new(flow.config().ga.clone()).evaluation_budget();
    eprintln!("budget: {budget} evaluations per arm (GA and random)");

    let opt = mvf_sboxes::optimal_sboxes();
    let des = mvf_sboxes::des_sboxes();
    let mut workloads: Vec<(&str, Vec<_>)> = Vec::new();
    for n in [2usize, 4, 8, 16] {
        workloads.push(("PRESENT", opt[..n].to_vec()));
    }
    for n in [2usize, 4, 8] {
        workloads.push(("DES", des[..n].to_vec()));
    }

    let mut table = Table1::default();
    for (family, functions) in workloads {
        let n = functions.len();
        eprintln!("[{family} x{n}] random baseline ...");
        let baseline = flow.random_baseline(&functions, budget, 0xBA5E + n as u64);
        eprintln!("[{family} x{n}] genetic algorithm ...");
        let result = flow.run(&functions)?;
        table.rows.push(Table1Row {
            circuit: family.to_string(),
            n_sboxes: n,
            random_avg: baseline.avg_area_ge,
            random_best: baseline.best_area_ge,
            ga: result.synthesized_area_ge,
            ga_tm: result.mapped_area_ge,
        });
        eprintln!(
            "[{family} x{n}] avg {:.0} best {:.0} GA {:.0} GA+TM {:.0} improvement {:.0}%",
            baseline.avg_area_ge,
            baseline.best_area_ge,
            result.synthesized_area_ge,
            result.mapped_area_ge,
            table.rows.last().expect("row").improvement_pct()
        );
    }
    println!("\n{table}");
    Ok(())
}
