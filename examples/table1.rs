//! Regenerates the paper's **Table I** as a standalone binary (the
//! Criterion bench `table1` does the same inside `cargo bench`).
//!
//! The GA arm runs all seven workloads as one [`mvf::Flow::run_many`]
//! batch; the random arm reuses the same flow per workload.
//!
//! ```sh
//! cargo run --release --example table1                  # quick budget
//! MVF_PAPER_SCALE=1 cargo run --release --example table1  # paper budget
//! ```
//!
//! Budget knobs: `MVF_GA_POP`, `MVF_GA_GENS`, `MVF_PAPER_SCALE=1`
//! (population 24, generations 442 ⇒ 9750 evaluations ≈ the paper's 9726).

use mvf::{SearchStrategy, Table1, Table1Row, Workload};
use mvf_bench::{bench_flow, table1_workloads};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = bench_flow();
    let budget = flow.strategy().evaluation_budget();
    eprintln!("budget: {budget} evaluations per arm (GA and random)");

    // Seeds derive from the GA seed and batch index — the same derivation
    // the Criterion `table1` bench uses, so both entry points print the
    // same table for a given budget.
    let bench_workloads = table1_workloads();
    let workloads: Vec<Workload> = bench_workloads.iter().map(|w| w.to_workload()).collect();

    eprintln!("running {} workloads as one batch ...", workloads.len());
    let reports = flow.run_many(&workloads);

    let mut table = Table1::default();
    for (w, report) in bench_workloads.iter().zip(&reports) {
        let result = report.outcome.clone()?;
        eprintln!("[{}] random baseline ...", report.name);
        let baseline = flow.random_baseline(&w.functions, budget, 0xBA5E + w.n as u64);
        table.rows.push(Table1Row {
            circuit: w.family.to_string(),
            n_sboxes: w.n,
            random_avg: baseline.avg_area_ge,
            random_best: baseline.best_area_ge,
            ga: result.synthesized_area_ge,
            ga_tm: result.mapped_area_ge,
        });
        eprintln!(
            "[{}] avg {:.0} best {:.0} GA {:.0} GA+TM {:.0} improvement {:.0}%",
            report.name,
            baseline.avg_area_ge,
            baseline.best_area_ge,
            result.synthesized_area_ge,
            result.mapped_area_ge,
            table.rows.last().expect("row").improvement_pct()
        );
    }
    println!("\n{table}");
    Ok(())
}
