//! Quickstart: obfuscate two 4-bit S-boxes into one camouflaged circuit.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Next steps: `attack_demo` runs the adversary against the result;
//! `service_demo` drives the same pipeline through the persistent
//! `mvf-serve` audit service (checkpoints, resume, wire protocol).

use mvf::Flow;
use mvf_ga::GaConfig;
use mvf_sboxes::optimal_sboxes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The viable functions the adversary already suspects: two of the 16
    // optimal 4-bit S-boxes.
    let functions = optimal_sboxes()[..2].to_vec();

    let flow = Flow::builder()
        .ga(GaConfig {
            population: 10,
            generations: 6,
            ..GaConfig::default()
        })
        .build();

    println!("Running the three-phase flow on 2 PRESENT-class S-boxes ...");
    let result = flow.run(&functions)?;

    println!("Search evaluations:    {}", result.evaluations);
    println!("Failed evaluations:    {}", result.failed_evaluations);
    println!(
        "Synthesized area (GA): {:.1} GE",
        result.synthesized_area_ge
    );
    println!("Camouflaged (GA+TM):   {:.1} GE", result.mapped_area_ge);
    println!(
        "Select inputs eliminated: merged circuit had {}, mapped has {} inputs",
        result.merged.aig.n_inputs(),
        result.mapped.netlist.inputs().len()
    );
    println!(
        "Camouflaged cells: {} of {}",
        result.mapped.witness.cells.len(),
        result.mapped.netlist.n_cells()
    );

    // The mapped netlist can be written out for external tools.
    let lib = flow.library();
    let camo = flow.camo_library();
    let verilog = mvf_netlist::io::to_verilog(&result.mapped.netlist, lib, Some(camo));
    println!("\nStructural Verilog (first lines):");
    for line in verilog.lines().take(8) {
        println!("  {line}");
    }

    // Exhaustive validation ran inside the flow; demonstrate it again.
    mvf_sim::validate_mapped(&result.mapped, lib, camo, &result.merged.functions)?;
    println!("\nValidation: every viable function is realizable. ✓");
    Ok(())
}
