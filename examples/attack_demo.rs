//! The adversary's view (§I of the paper): which viable functions can she
//! rule out?
//!
//! Compares two designs hiding S-box G0 among 4 viable functions:
//!
//! * **random camouflage** — synthesize only G0, replace every gate with a
//!   camouflaged look-alike: the other viable functions are implausible
//!   and the adversary rules them out *without resolving a single cell*;
//! * **this paper's flow** — all viable functions stay plausible.
//!
//! The demo finishes with the *full* adversary: plausibility under any
//! input/output pin interpretation (the signature-pruned orbit sweep), with
//! the witness permutation for a pin-scrambled suspect.
//!
//! ```sh
//! cargo run --release --example attack_demo
//! ```
//!
//! For long-running audit fleets, `service_demo` runs this adversary as
//! a persistent service (`mvf-serve`) with session caching and
//! kill/resume-safe checkpoints.

use mvf::Flow;
use mvf_attack::{
    plausibility_sweep, plausibility_sweep_any_io_with, random_camouflage, AnyIoJob, AnyIoOptions,
};
use mvf_cells::{CamoLibrary, Library};
use mvf_ga::GaConfig;
use mvf_logic::{IoInterpretation, VectorFunction};
use mvf_sboxes::optimal_sboxes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    let viable = optimal_sboxes()[..4].to_vec();

    println!("Baseline: random camouflage of S-box G0 alone");
    let baseline = random_camouflage(&viable[0], &lib, &camo)?;
    println!(
        "  {} cells, {:.1} GE",
        baseline.n_cells(),
        baseline.area_ge(&lib, Some(&camo))
    );
    // One batched sweep: the netlist is encoded once, every candidate is
    // an incremental SAT query.
    for (j, p) in plausibility_sweep(&baseline, &lib, &camo, &viable)
        .into_iter()
        .enumerate()
    {
        println!(
            "  G{j} plausible? {}",
            if p {
                "yes"
            } else {
                "NO  → adversary rules it out"
            }
        );
    }

    println!("\nThis paper's flow: merge all 4, GA pin assignment, camo mapping");
    let flow = Flow::builder()
        .ga(GaConfig {
            population: 8,
            generations: 4,
            ..GaConfig::default()
        })
        .build();
    let result = flow.run(&viable)?;
    println!(
        "  {} cells, {:.1} GE (select inputs eliminated)",
        result.mapped.netlist.n_cells(),
        result.mapped_area_ge
    );
    let verdicts = plausibility_sweep(
        &result.mapped.netlist,
        &lib,
        &camo,
        &result.merged.functions,
    );
    let mut all = true;
    for (j, p) in verdicts.into_iter().enumerate() {
        all &= p;
        println!("  G{j} plausible? {}", if p { "yes" } else { "NO (bug!)" });
    }
    assert!(
        all,
        "the designed circuit must keep every viable function plausible"
    );
    println!("\nThe adversary cannot rule out any viable function. ✓");

    println!("\nFull adversary: interpretation freedom (any pin permutation)");
    // A pin-scrambled copy of G0: implausible for the baseline circuit
    // under the identity reading, but the full adversary searches every
    // interpretation — and names the witness permutation it found.
    let scrambled = viable[0]
        .permute_inputs(&[2, 0, 3, 1])?
        .permute_outputs(&[1, 3, 0, 2])?;
    // Run the sweep through a job so the solver's inprocessing counters
    // are observable afterwards (verdicts are identical to
    // `plausibility_sweep_any_io`).
    let mut job = AnyIoJob::new(
        &baseline,
        &lib,
        &camo,
        vec![scrambled],
        &AnyIoOptions::default(),
    );
    while !job.is_done() {
        job.step(usize::MAX);
    }
    let sat = job.sat_stats();
    println!(
        "  inprocessing: {} clauses vivified, {} variables eliminated, \
         {} clause-DB reductions",
        sat.n_vivified, sat.n_eliminated, sat.n_reductions
    );
    let verdicts = job.verdicts();
    let v = &verdicts[0];
    println!(
        "  scrambled G0 plausible under some interpretation? {} \
         ({} of {} orbit points queried, {} screened SAT-free)",
        if v.plausible { "yes" } else { "no" },
        v.queries,
        v.orbit,
        v.screened
    );
    if let Some(w) = &v.witness {
        println!(
            "  witness: inputs {:?} (neg {:#b}), outputs {:?} (neg {:#b})",
            w.in_perm, w.in_neg, w.out_perm, w.out_neg
        );
    }

    println!("\nNPN adversary: polarity flips + cross-candidate class sharing");
    // A 3-bit mini-target keeps the full NPN orbit (3!·2³·3!·2³ = 2304
    // points) demo-sized. The suspect batch is one function plus two
    // NPN-transformed copies — exactly the redundancy class sharing eats.
    let g = VectorFunction::from_lookup_table(3, 3, &[0, 3, 5, 6, 1, 4, 7, 2])?;
    let npn_target = random_camouflage(&g, &lib, &camo)?;
    let t1 = IoInterpretation {
        in_perm: vec![1, 2, 0],
        in_neg: 0b011,
        out_perm: vec![2, 0, 1],
        out_neg: 0b100,
    };
    let t2 = IoInterpretation {
        in_perm: vec![2, 0, 1],
        in_neg: 0b101,
        out_perm: vec![1, 2, 0],
        out_neg: 0b010,
    };
    let batch = vec![g.clone(), t1.apply(&g)?, t2.apply(&g)?];
    let p_opts = AnyIoOptions::default();
    let npn_opts = AnyIoOptions {
        npn: true,
        ..p_opts.clone()
    };
    let shared_opts = AnyIoOptions {
        class_share: true,
        ..npn_opts.clone()
    };
    let solo = plausibility_sweep_any_io_with(&npn_target, &lib, &camo, &batch, &npn_opts);
    let shared = plausibility_sweep_any_io_with(&npn_target, &lib, &camo, &batch, &shared_opts);
    for (j, (a, b)) in solo.iter().zip(&shared).enumerate() {
        assert_eq!(
            (a.plausible, &a.witness),
            (b.plausible, &b.witness),
            "class sharing must not change verdicts"
        );
        println!(
            "  suspect {j}: plausible? {} — class {} (size {}), orbit {} → {} unique",
            if b.plausible { "yes" } else { "no" },
            b.class,
            b.class_size,
            b.orbit,
            b.unique
        );
    }
    let classes = shared.iter().map(|v| v.class).max().map_or(0, |c| c + 1);
    let cost = |vs: &[mvf_attack::AnyIoVerdict]| -> usize {
        vs.iter().map(|v| v.queries + v.screened).sum()
    };
    println!(
        "  classes found: {classes}; work (screen passes + SAT queries): \
         {} solo → {} shared, {} saved by class sharing",
        cost(&solo),
        cost(&shared),
        cost(&solo) - cost(&shared)
    );
    println!("\nSAT-free screening of polarity flips (XOR masks on the cached batch)");
    // A target small enough for the screen's complete regime: every orbit
    // point settles without a SAT call. The suspect's output columns have
    // the wrong weights for *any* NPN transform of the hidden function,
    // so the screen refutes its entire orbit — the negation points among
    // them cost only an XOR against the cached evaluation batch.
    let tiny = VectorFunction::from_lookup_table(2, 2, &[1, 2, 0, 3])?;
    let tiny_target = random_camouflage(&tiny, &lib, &camo)?;
    let suspect = VectorFunction::from_lookup_table(2, 2, &[0, 0, 0, 3])?;
    let screen_npn = plausibility_sweep_any_io_with(
        &tiny_target,
        &lib,
        &camo,
        std::slice::from_ref(&suspect),
        &npn_opts,
    );
    let screen_p = plausibility_sweep_any_io_with(
        &tiny_target,
        &lib,
        &camo,
        std::slice::from_ref(&suspect),
        &p_opts,
    );
    println!(
        "  suspect plausible? {} — {} of {} NPN orbit points settled SAT-free \
         ({} SAT queries); {} are negation points beyond the {} the \
         permutation-only screen saw",
        if screen_npn[0].plausible { "yes" } else { "no" },
        screen_npn[0].screened,
        screen_npn[0].orbit,
        screen_npn[0].queries,
        screen_npn[0].screened.saturating_sub(screen_p[0].screened),
        screen_p[0].screened
    );
    Ok(())
}
