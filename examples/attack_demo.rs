//! The adversary's view (§I of the paper): which viable functions can she
//! rule out?
//!
//! Compares two designs hiding S-box G0 among 4 viable functions:
//!
//! * **random camouflage** — synthesize only G0, replace every gate with a
//!   camouflaged look-alike: the other viable functions are implausible
//!   and the adversary rules them out *without resolving a single cell*;
//! * **this paper's flow** — all viable functions stay plausible.
//!
//! The demo finishes with the *full* adversary: plausibility under any
//! input/output pin interpretation (the signature-pruned orbit sweep), with
//! the witness permutation for a pin-scrambled suspect.
//!
//! ```sh
//! cargo run --release --example attack_demo
//! ```
//!
//! For long-running audit fleets, `service_demo` runs this adversary as
//! a persistent service (`mvf-serve`) with session caching and
//! kill/resume-safe checkpoints.

use mvf::Flow;
use mvf_attack::{plausibility_sweep, random_camouflage, AnyIoJob, AnyIoOptions};
use mvf_cells::{CamoLibrary, Library};
use mvf_ga::GaConfig;
use mvf_sboxes::optimal_sboxes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::standard();
    let camo = CamoLibrary::from_library(&lib);
    let viable = optimal_sboxes()[..4].to_vec();

    println!("Baseline: random camouflage of S-box G0 alone");
    let baseline = random_camouflage(&viable[0], &lib, &camo)?;
    println!(
        "  {} cells, {:.1} GE",
        baseline.n_cells(),
        baseline.area_ge(&lib, Some(&camo))
    );
    // One batched sweep: the netlist is encoded once, every candidate is
    // an incremental SAT query.
    for (j, p) in plausibility_sweep(&baseline, &lib, &camo, &viable)
        .into_iter()
        .enumerate()
    {
        println!(
            "  G{j} plausible? {}",
            if p {
                "yes"
            } else {
                "NO  → adversary rules it out"
            }
        );
    }

    println!("\nThis paper's flow: merge all 4, GA pin assignment, camo mapping");
    let flow = Flow::builder()
        .ga(GaConfig {
            population: 8,
            generations: 4,
            ..GaConfig::default()
        })
        .build();
    let result = flow.run(&viable)?;
    println!(
        "  {} cells, {:.1} GE (select inputs eliminated)",
        result.mapped.netlist.n_cells(),
        result.mapped_area_ge
    );
    let verdicts = plausibility_sweep(
        &result.mapped.netlist,
        &lib,
        &camo,
        &result.merged.functions,
    );
    let mut all = true;
    for (j, p) in verdicts.into_iter().enumerate() {
        all &= p;
        println!("  G{j} plausible? {}", if p { "yes" } else { "NO (bug!)" });
    }
    assert!(
        all,
        "the designed circuit must keep every viable function plausible"
    );
    println!("\nThe adversary cannot rule out any viable function. ✓");

    println!("\nFull adversary: interpretation freedom (any pin permutation)");
    // A pin-scrambled copy of G0: implausible for the baseline circuit
    // under the identity reading, but the full adversary searches every
    // interpretation — and names the witness permutation it found.
    let scrambled = viable[0]
        .permute_inputs(&[2, 0, 3, 1])?
        .permute_outputs(&[1, 3, 0, 2])?;
    // Run the sweep through a job so the solver's inprocessing counters
    // are observable afterwards (verdicts are identical to
    // `plausibility_sweep_any_io`).
    let mut job = AnyIoJob::new(
        &baseline,
        &lib,
        &camo,
        vec![scrambled],
        &AnyIoOptions::default(),
    );
    while !job.is_done() {
        job.step(usize::MAX);
    }
    let sat = job.sat_stats();
    println!(
        "  inprocessing: {} clauses vivified, {} variables eliminated, \
         {} clause-DB reductions",
        sat.n_vivified, sat.n_eliminated, sat.n_reductions
    );
    let verdicts = job.verdicts();
    let v = &verdicts[0];
    println!(
        "  scrambled G0 plausible under some interpretation? {} \
         ({} of {} orbit points queried, {} screened SAT-free)",
        if v.plausible { "yes" } else { "no" },
        v.queries,
        v.orbit,
        v.screened
    );
    if let Some((ip, op)) = &v.witness {
        println!("  witness: inputs {ip:?}, outputs {op:?}");
    }
    Ok(())
}
