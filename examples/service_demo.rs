//! The audit service end to end: submit → checkpoint → kill → resume →
//! result, all over the line protocol.
//!
//! An in-process [`AuditService`] audits PRESENT×2 twice: once
//! uninterrupted, once cancelled mid-run and resumed from its captured
//! checkpoint under a new job id. The two reports are compared through
//! their canonical wire encoding — they are byte-identical, which is the
//! service's core promise: a kill costs wall-clock time, never results.
//!
//! ```sh
//! cargo run --release --example service_demo
//! ```

use mvf_serve::json::Value;
use mvf_serve::wire::encode_workload;
use mvf_serve::{AuditService, ServeConfig};

fn request(service: &AuditService, line: &str) -> Value {
    let response = service.handle(line);
    let v = Value::parse(&response).expect("service responses are valid JSON");
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(true),
        "request failed: {response}"
    );
    v
}

fn main() {
    let mut cfg = ServeConfig::default();
    cfg.flow.ga.population = 6;
    cfg.flow.ga.generations = 4;
    cfg.checkpoint_steps = 1;
    cfg.sweep_chunk = 8;
    let service = AuditService::start(cfg);

    // A pinned workload seed makes the two submissions comparable.
    let workload = mvf::Workload::new("PRESENT x2", mvf_sboxes::optimal_sboxes()[..2].to_vec())
        .with_seed(0xDEC0DE);
    let workload_json = encode_workload(&workload).to_string();

    println!("1. submit the reference job and wait for its report");
    let full = request(
        &service,
        &format!(
            "{{\"cmd\":\"submit\",\"id\":\"full\",\"wait\":true,\"workload\":{workload_json}}}"
        ),
    );
    let reference = full.get("report").expect("report").to_string();
    let summary = full
        .get("report")
        .and_then(|r| r.get("summary"))
        .and_then(Value::as_str)
        .unwrap();
    println!("   {summary}");

    println!("2. submit the same workload again and kill it mid-run");
    request(
        &service,
        &format!("{{\"cmd\":\"submit\",\"id\":\"killed\",\"workload\":{workload_json}}}"),
    );
    // Grab the first checkpoint the job publishes, then cancel it.
    let checkpoint = loop {
        let response = service.handle("{\"cmd\":\"checkpoint\",\"id\":\"killed\"}");
        let v = Value::parse(&response).unwrap();
        if v.get("ok").and_then(Value::as_bool) == Some(true) {
            break v.get("checkpoint").unwrap().to_string();
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    };
    request(&service, "{\"cmd\":\"cancel\",\"id\":\"killed\"}");
    let status = loop {
        let v = request(&service, "{\"cmd\":\"status\",\"id\":\"killed\"}");
        let status = v.get("status").and_then(Value::as_str).unwrap().to_string();
        if status != "running" && status != "queued" {
            break status;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    };
    let generation = Value::parse(&checkpoint).ok().and_then(|cp| {
        cp.get("ga")
            .and_then(|ga| ga.get("generation"))
            .and_then(Value::as_usize)
    });
    match generation {
        Some(generation) => println!(
            "   captured a checkpoint at GA generation {generation}; job is now '{status}'"
        ),
        None => println!("   captured a mid-sweep checkpoint; job is now '{status}'"),
    }

    println!("3. resume from the captured checkpoint under a new id");
    let resumed = request(
        &service,
        &format!(
            "{{\"cmd\":\"submit\",\"id\":\"resumed\",\"wait\":true,\"checkpoint\":{checkpoint}}}"
        ),
    );
    let report = resumed.get("report").expect("report").to_string();

    assert_eq!(
        report, reference,
        "the resumed report must be byte-identical to the uninterrupted one"
    );
    println!("4. resumed report == uninterrupted report, byte for byte ✓");

    request(&service, "{\"cmd\":\"shutdown\"}");
    service.shutdown_and_join();
}
